//! Pluggable scheduler modules (paper §II-C).
//!
//! A module extends the runtime with user-visible APIs that schedule
//! module-specific tasks on the work-stealing runtime. A complete module
//! provides: (1) an initialization function called once per process, (2) a
//! finalization function, (3) optional special-purpose registrations (e.g.
//! copy handlers for transfers touching certain place kinds), and (4) a set
//! of user-facing functions — in Rust these live in the module's own crate
//! and internally place tasks at special-purpose places in the platform
//! model, so *all* work is scheduled by one unified runtime.
//!
//! This module also provides [`Poller`], the reusable implementation of the
//! periodically-polling asynchronous task pattern used by the MPI and CUDA
//! modules (paper §II-C1 steps 1–4): pending operations are swept by a
//! singleton task that yields between sweeps.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hiper_platform::PlaceId;
use parking_lot::Mutex;

use crate::runtime::Runtime;

/// Error raised by a pluggable module.
#[derive(Debug, Clone)]
pub enum ModuleError {
    /// Module initialization failed (e.g. a platform-model assertion like
    /// "exactly one Interconnect place" did not hold).
    Init {
        /// Name of the failing module.
        module: &'static str,
        /// What went wrong.
        message: String,
    },
    /// A communication peer exhausted its reliable-delivery retry budget
    /// (fault injection: permanently killed or partitioned rank).
    Unreachable {
        /// Name of the reporting module.
        module: &'static str,
        /// The rank that never acked.
        peer: usize,
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// A malformed or unexpected wire frame (truncated header, unknown
    /// opcode, protocol state desync). The frame is dropped and the error
    /// recorded; handlers must not panic the delivery-engine thread.
    Protocol {
        /// Name of the reporting module.
        module: &'static str,
        /// What was wrong with the frame.
        detail: String,
    },
}

impl ModuleError {
    /// Creates an initialization error for `module`.
    pub fn new(module: &'static str, message: impl Into<String>) -> ModuleError {
        ModuleError::Init {
            module,
            message: message.into(),
        }
    }

    /// Creates an unreachable-peer error for `module`.
    pub fn unreachable(module: &'static str, peer: usize, attempts: u32) -> ModuleError {
        ModuleError::Unreachable {
            module,
            peer,
            attempts,
        }
    }

    /// Creates a wire-protocol error for `module`.
    pub fn protocol(module: &'static str, detail: impl Into<String>) -> ModuleError {
        ModuleError::Protocol {
            module,
            detail: detail.into(),
        }
    }

    /// Name of the module that raised the error.
    pub fn module(&self) -> &'static str {
        match self {
            ModuleError::Init { module, .. }
            | ModuleError::Unreachable { module, .. }
            | ModuleError::Protocol { module, .. } => module,
        }
    }
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Init { module, message } => {
                write!(f, "module '{}': {}", module, message)
            }
            ModuleError::Unreachable {
                module,
                peer,
                attempts,
            } => write!(
                f,
                "module '{}': rank {} unreachable after {} attempts",
                module, peer, attempts
            ),
            ModuleError::Protocol { module, detail } => {
                write!(f, "module '{}': protocol violation: {}", module, detail)
            }
        }
    }
}

impl std::error::Error for ModuleError {}

/// A pluggable HiPER module. Implementations live in third-party crates; the
/// runtime only knows this interface.
pub trait SchedulerModule: Send + Sync {
    /// Stable module name (used for statistics attribution).
    fn name(&self) -> &'static str;

    /// Called once, after the worker pool is up. Modules should assert their
    /// platform-model requirements here (paper §II-C1: "It is up to
    /// individual modules to make these assertions ... during module
    /// initialization").
    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError>;

    /// Called once at runtime shutdown, in reverse registration order.
    fn finalize(&self, _rt: &Runtime) {}

    /// Optional: register special-purpose handlers (e.g. the CUDA module
    /// registers itself for copies touching GPU places, paper §II-C3).
    fn register_copy_handlers(&self, _rt: &Runtime) {}
}

/// One pending asynchronous operation: returns `true` once complete (at
/// which point it is dropped; completion side effects such as satisfying a
/// promise belong inside the closure).
pub type PollFn = Box<dyn FnMut() -> bool + Send>;

/// The singleton polling task shared by asynchronous module operations
/// (paper §II-C1): operations are appended to a pending list; a polling task
/// placed at the module's place sweeps the list, retains incomplete entries,
/// and re-enqueues itself FIFO (yielding to other useful work) while entries
/// remain. A polling task is not created if one already exists.
pub struct Poller {
    name: &'static str,
    place: PlaceId,
    pending: Mutex<Vec<PollFn>>,
    running: AtomicBool,
}

impl Poller {
    /// Creates a poller whose sweep tasks run at `place`.
    pub fn new(name: &'static str, place: PlaceId) -> Arc<Poller> {
        Arc::new(Poller {
            name,
            place,
            pending: Mutex::new(Vec::new()),
            running: AtomicBool::new(false),
        })
    }

    /// Registers a pending operation and ensures the polling task is
    /// running.
    pub fn submit(self: &Arc<Self>, rt: &Runtime, poll: PollFn) {
        self.pending.lock().push(poll);
        self.ensure_running(rt);
    }

    /// Number of operations currently pending (racy; diagnostics only).
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    fn ensure_running(self: &Arc<Self>, rt: &Runtime) {
        if self
            .running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.schedule_sweep(rt);
        }
    }

    fn schedule_sweep(self: &Arc<Self>, rt: &Runtime) {
        let poller = Arc::clone(self);
        let rt2 = rt.clone();
        // FIFO enqueue = yield: every other eligible task at the place runs
        // before the next sweep.
        rt.spawn_at_yield(self.place, move || poller.sweep(&rt2));
    }

    fn sweep(self: &Arc<Self>, rt: &Runtime) {
        let _timer = rt.module_stats().time(self.name);
        // Poll with the lock *released*: completing an operation may run
        // continuations that re-enter submit() on this same poller.
        let mut entries = std::mem::take(&mut *self.pending.lock());
        let mut completed_any = false;
        entries.retain_mut(|poll| {
            let done = poll();
            completed_any |= done;
            !done
        });
        let empty = {
            let mut pending = self.pending.lock();
            if pending.is_empty() {
                *pending = entries;
            } else {
                // Operations submitted during the poll: keep the surviving
                // old entries first to preserve rough FIFO fairness.
                let new = std::mem::replace(&mut *pending, entries);
                pending.extend(new);
            }
            pending.is_empty()
        };
        if empty {
            self.running.store(false, Ordering::Release);
            // Submit/empty race: an operation may have been pushed after the
            // emptiness check but before the store. Re-arm if so.
            if !self.pending.lock().is_empty() {
                self.ensure_running(rt);
            }
            return;
        }
        if !completed_any {
            // Nothing progressed: give the OS (and, on a single core, the
            // threads that drive completion) a chance before re-polling.
            std::thread::yield_now();
        }
        self.schedule_sweep(rt);
    }
}

impl fmt::Debug for Poller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Poller")
            .field("name", &self.name)
            .field("place", &self.place)
            .field("pending", &self.pending_len())
            .field("running", &self.running.load(Ordering::Relaxed))
            .finish()
    }
}
