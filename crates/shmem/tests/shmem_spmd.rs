//! SPMD tests for the raw SHMEM library and the AsyncSHMEM HiPER module.

use std::sync::Arc;

use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_shmem::{Cmp, ShmemModule, ShmemWorld};

fn with_shmem<R: Send + 'static>(
    n: usize,
    workers: usize,
    heap_bytes: usize,
    main: impl Fn(hiper_netsim::RankEnv, Arc<ShmemModule>) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let world = ShmemWorld::new(n, heap_bytes);
    SpmdBuilder::new(n)
        .net(NetConfig::default())
        .workers_per_rank(workers)
        .run(
            move |_rank, transport| {
                let shmem = ShmemModule::new(world.clone(), transport);
                (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
            },
            main,
        )
}

#[test]
fn put_then_barrier_then_read() {
    let results = with_shmem(4, 1, 1 << 16, |env, shmem| {
        let raw = shmem.raw();
        let buf = raw.malloc64(env.nranks);
        // Everyone writes its rank into slot `me` of everyone's buffer.
        for target in 0..env.nranks {
            raw.put64(target, buf.at64(env.rank), &[env.rank as u64 + 1]);
        }
        raw.barrier_all();
        // After the barrier every slot must be filled.
        (0..env.nranks)
            .map(|i| raw.heap().load_u64(buf.at64(i)))
            .collect::<Vec<_>>()
    });
    for r in &results {
        assert_eq!(r, &vec![1, 2, 3, 4]);
    }
}

#[test]
fn get_reads_remote_heap() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let raw = shmem.raw();
        let buf = raw.malloc64(1);
        raw.heap().store_u64(buf.offset, 100 + env.rank as u64);
        raw.barrier_all();
        let peer = 1 - env.rank;
        let data = raw.get(peer, buf.offset, 8);
        u64::from_le_bytes(data[..8].try_into().unwrap())
    });
    assert_eq!(results, vec![101, 100]);
}

#[test]
fn remote_atomics_serialize() {
    let n = 4;
    let results = with_shmem(n, 1, 1 << 16, move |env, shmem| {
        let raw = shmem.raw();
        let counter = raw.malloc64(1);
        raw.barrier_all();
        // Everyone hammers rank 0's counter.
        let mut olds = Vec::new();
        for _ in 0..50 {
            olds.push(raw.fadd(0, counter.offset, 1));
        }
        raw.barrier_all();
        let total = raw.heap().load_u64(counter.offset);
        (olds, total, env.rank)
    });
    let (_, total, _) = &results[0];
    assert_eq!(*total, 200);
    // Old values across all ranks must be a permutation of 0..200.
    let mut all_olds: Vec<u64> = results.iter().flat_map(|(o, _, _)| o.clone()).collect();
    all_olds.sort_unstable();
    assert_eq!(all_olds, (0..200).collect::<Vec<_>>());
}

#[test]
fn cswap_elects_a_single_winner() {
    let n = 4;
    let results = with_shmem(n, 1, 1 << 16, move |env, shmem| {
        let raw = shmem.raw();
        let lock = raw.malloc64(1);
        raw.barrier_all();
        // Everyone tries to claim the lock with their rank+1.
        let old = raw.cswap(0, lock.offset, 0, env.rank as u64 + 1);
        raw.barrier_all();
        (old == 0, raw.heap().load_u64(lock.offset))
    });
    let winners = results.iter().filter(|(won, _)| *won).count();
    assert_eq!(winners, 1, "exactly one CAS must win");
}

#[test]
fn wait_until_blocks_until_remote_put() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let raw = shmem.raw();
        let flag = raw.malloc64(1);
        raw.barrier_all();
        if env.rank == 0 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            raw.put64(1, flag.offset, &[7]);
            0
        } else {
            let start = std::time::Instant::now();
            raw.wait_until(flag.offset, Cmp::Eq, 7);
            assert!(start.elapsed() >= std::time::Duration::from_millis(25));
            raw.heap().load_u64(flag.offset)
        }
    });
    assert_eq!(results[1], 7);
}

#[test]
fn quiet_flushes_outstanding_puts() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let raw = shmem.raw();
        let buf = raw.malloc64(1);
        raw.barrier_all();
        if env.rank == 0 {
            raw.put64(1, buf.offset, &[99]);
            raw.quiet();
            // After quiet, the value is observable remotely.
            let data = raw.get(1, buf.offset, 8);
            u64::from_le_bytes(data[..8].try_into().unwrap())
        } else {
            std::thread::sleep(std::time::Duration::from_millis(50));
            0
        }
    });
    assert_eq!(results[0], 99);
}

#[test]
fn collectives_match_oracle() {
    let n = 5;
    let results = with_shmem(n, 1, 1 << 16, move |env, shmem| {
        let raw = shmem.raw();
        let me = env.rank as u64;
        let sums = raw.sum_to_all_u64(&[me, 1]);
        assert_eq!(sums, vec![(0..n as u64).sum::<u64>(), n as u64]);
        let fsums = raw.sum_to_all_f64(&[me as f64 * 0.5]);
        assert!((fsums[0] - (0..n as u64).sum::<u64>() as f64 * 0.5).abs() < 1e-12);
        let maxes = raw.max_to_all_i64(&[me as i64 - 3]);
        assert_eq!(maxes, vec![n as i64 - 4]);
        let bc = raw.broadcast(3, bytes::Bytes::from(vec![env.rank as u8; 4]));
        assert_eq!(&bc[..], &[3u8; 4]);
        true
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn alltoall64_exchanges_counts() {
    let n = 4;
    let results = with_shmem(n, 1, 1 << 16, move |env, shmem| {
        let raw = shmem.raw();
        let mine: Vec<u64> = (0..n).map(|d| (env.rank * 10 + d) as u64).collect();
        let got = raw.alltoall64(&mine);
        (0..n).all(|s| got[s] == (s * 10 + env.rank) as u64)
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn module_taskified_apis() {
    let results = with_shmem(2, 2, 1 << 16, |env, shmem| {
        let buf = shmem.malloc64(1);
        shmem.barrier_all();
        let peer = 1 - env.rank;
        shmem.put64(peer, buf.offset, vec![env.rank as u64 + 10]);
        shmem.barrier_all();
        let local = shmem.heap().load_u64(buf.offset);
        let remote = shmem.get(peer, buf.offset, 8);
        let remote = u64::from_le_bytes(remote[..8].try_into().unwrap());
        let sum = shmem.sum_to_all_u64(vec![local]);
        (local, remote, sum[0])
    });
    assert_eq!(results[0].0, 11); // peer wrote 11 into rank 0
    assert_eq!(results[1].0, 10);
    assert_eq!(results[0].1, 10); // remote read of peer's heap
    assert_eq!(results[0].2, 21);
}

#[test]
fn async_when_fires_on_remote_put() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let flag = shmem.malloc64(1);
        let data = shmem.malloc64(1);
        shmem.barrier_all();
        if env.rank == 0 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            // Put the payload, then set the flag (FIFO per pair: the flag
            // put lands after the data put).
            shmem.raw().put64(1, data.offset, &[555]);
            shmem.raw().put64(1, flag.offset, &[1]);
            0
        } else {
            let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let g = Arc::clone(&got);
            let heap = Arc::clone(shmem.heap());
            let off = data.offset;
            hiper_runtime::api::finish(|| {
                // The paper's novel API: body runs when flag becomes 1.
                shmem.async_when(flag.offset, Cmp::Eq, 1, move || {
                    g.store(heap.load_u64(off), std::sync::atomic::Ordering::SeqCst);
                });
            })
            .expect("no task panicked");
            got.load(std::sync::atomic::Ordering::SeqCst)
        }
    });
    assert_eq!(results[1], 555);
}

#[test]
fn async_when_fires_immediately_if_already_true() {
    let results = with_shmem(1, 1, 1 << 16, |_env, shmem| {
        let flag = shmem.malloc64(1);
        shmem.store_local_i64(flag.offset, 3);
        let hit = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let h = Arc::clone(&hit);
        hiper_runtime::api::finish(|| {
            shmem.async_when(flag.offset, Cmp::Ge, 2, move || {
                h.store(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .expect("no task panicked");
        hit.load(std::sync::atomic::Ordering::SeqCst)
    });
    assert_eq!(results[0], 1);
}

#[test]
fn until_future_composes_with_tasks() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let flag = shmem.malloc64(1);
        shmem.barrier_all();
        if env.rank == 0 {
            std::thread::sleep(std::time::Duration::from_millis(15));
            shmem.raw().put64(1, flag.offset, &[2]);
            0u64
        } else {
            let fut = shmem.until_future(flag.offset, Cmp::Eq, 2);
            let chained = hiper_runtime::api::async_future_await(&fut, || 40u64);
            chained.get() + 2
        }
    });
    assert_eq!(results[1], 42);
}

#[test]
fn get_nbi_and_fadd_nbi() {
    let results = with_shmem(2, 1, 1 << 16, |env, shmem| {
        let buf = shmem.malloc64(1);
        shmem.heap().store_u64(buf.offset, env.rank as u64 + 30);
        shmem.barrier_all();
        let peer = 1 - env.rank;
        let gf = shmem.get_nbi(peer, buf.offset, 8);
        let af = shmem.fadd_nbi(peer, buf.offset, 100);
        let got = gf.get();
        let got = u64::from_le_bytes(got[..8].try_into().unwrap());
        let old = af.get();
        shmem.barrier_all();
        (got, old, shmem.heap().load_u64(buf.offset))
    });
    // get_nbi and fadd_nbi race benignly; both observe either the original
    // or the post-add value.
    assert!(results[0].0 == 31 || results[0].0 == 131);
    assert!(results[0].1 == 31 || results[0].1 == 131);
    // After both fadds, each heap value is original + 100.
    assert_eq!(results[0].2, 130);
    assert_eq!(results[1].2, 131);
}

#[test]
fn heap_exhaustion_panics() {
    let world = ShmemWorld::new(1, 64);
    let cluster = hiper_netsim::Cluster::start(1, NetConfig::instant());
    let raw = hiper_shmem::RawShmem::new(world, cluster.transport(0));
    let _a = raw.malloc(32);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| raw.malloc(64)));
    assert!(result.is_err());
    cluster.stop();
}
