//! The HiPER OpenSHMEM module — "AsyncSHMEM" (paper §II-C2).
//!
//! OpenSHMEM v1.3 makes no thread-safety guarantees; funnelling every
//! library call through tasks at the Interconnect place makes multithreaded
//! use safe and standard-compliant, exactly as the paper argues. On top of
//! the taskified standard APIs, the module adds the paper's novel
//! future-based extensions — most importantly
//! [`ShmemModule::async_when`] (`shmem_async_when`): a task whose execution
//! is predicated on a remote put into this rank's address space, replacing
//! CPU-burning `shmem_wait_until` loops with runtime-managed continuations.

use std::sync::Arc;

use bytes::Bytes;
use hiper_netsim::{Rank, Transport};
use hiper_platform::{PlaceId, PlaceKind};
use hiper_runtime::{Future, ModuleError, Promise, Runtime, SchedulerModule};
use parking_lot::RwLock;

use crate::heap::{SymHeap, SymPtr};
use crate::raw::{Cmp, RawShmem, ShmemWorld};

/// The HiPER OpenSHMEM module. One instance per rank.
pub struct ShmemModule {
    raw: Arc<RawShmem>,
    state: RwLock<Option<ModuleState>>,
}

struct ModuleState {
    rt: Runtime,
    interconnect: PlaceId,
}

impl ShmemModule {
    /// Creates the module for one rank.
    pub fn new(world: ShmemWorld, transport: Transport) -> Arc<ShmemModule> {
        Arc::new(ShmemModule {
            raw: RawShmem::new(world, transport),
            state: RwLock::new(None),
        })
    }

    /// The underlying SHMEM library endpoint (what flat baselines use).
    pub fn raw(&self) -> &Arc<RawShmem> {
        &self.raw
    }

    /// `shmem_my_pe`.
    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    /// `shmem_n_pes`.
    pub fn nranks(&self) -> usize {
        self.raw.nranks()
    }

    /// Local heap handle.
    pub fn heap(&self) -> &Arc<SymHeap> {
        self.raw.heap()
    }

    /// Symmetric allocation (collective in SPMD order).
    pub fn malloc(&self, nbytes: usize) -> SymPtr {
        self.raw.malloc(nbytes)
    }

    /// Symmetric allocation of `n` 64-bit elements.
    pub fn malloc64(&self, n: usize) -> SymPtr {
        self.raw.malloc64(n)
    }

    fn with_state<R>(&self, f: impl FnOnce(&ModuleState) -> R) -> R {
        let guard = self.state.read();
        let state = guard
            .as_ref()
            .expect("SHMEM module used before runtime initialization");
        f(state)
    }

    fn taskify<R: Send + 'static>(
        &self,
        op: &'static str,
        bytes: u64,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        self.with_state(|state| {
            let _t = state.rt.module_stats().time_op("shmem", op, bytes);
            let slot = Arc::new(parking_lot::Mutex::new(None));
            let out = Arc::clone(&slot);
            let fut = state.rt.spawn_future_at(state.interconnect, move || {
                *out.lock() = Some(f());
            });
            fut.wait();
            let result = slot.lock().take().expect("taskified call lost its result");
            result
        })
    }

    // ------------------------------------------------------------------
    // Taskified standard APIs
    // ------------------------------------------------------------------

    /// `shmem_putmem` (taskified).
    pub fn put(&self, target: Rank, offset: usize, data: Vec<u8>) {
        let raw = Arc::clone(&self.raw);
        let bytes = data.len() as u64;
        self.taskify("put", bytes, move || raw.put(target, offset, &data));
    }

    /// Typed 64-bit put (taskified).
    pub fn put64(&self, target: Rank, offset: usize, values: Vec<u64>) {
        let raw = Arc::clone(&self.raw);
        let bytes = (values.len() * 8) as u64;
        self.taskify("put64", bytes, move || raw.put64(target, offset, &values));
    }

    /// `shmem_getmem` (taskified blocking).
    pub fn get(&self, target: Rank, offset: usize, nbytes: usize) -> Bytes {
        let raw = Arc::clone(&self.raw);
        self.taskify("get", nbytes as u64, move || {
            raw.get(target, offset, nbytes)
        })
    }

    /// `shmem_atomic_fetch_add` (taskified blocking).
    pub fn fadd(&self, target: Rank, offset: usize, delta: u64) -> u64 {
        let raw = Arc::clone(&self.raw);
        self.taskify("fadd", 8, move || raw.fadd(target, offset, delta))
    }

    /// `shmem_atomic_compare_swap` (taskified blocking).
    pub fn cswap(&self, target: Rank, offset: usize, expected: u64, desired: u64) -> u64 {
        let raw = Arc::clone(&self.raw);
        self.taskify("cswap", 8, move || {
            raw.cswap(target, offset, expected, desired)
        })
    }

    /// `shmem_quiet` (taskified).
    pub fn quiet(&self) {
        let raw = Arc::clone(&self.raw);
        self.taskify("quiet", 0, move || raw.quiet());
    }

    /// `shmem_barrier_all` (taskified).
    pub fn barrier_all(&self) {
        let raw = Arc::clone(&self.raw);
        self.taskify("barrier_all", 0, move || raw.barrier_all());
    }

    /// `shmem_longlong_sum_to_all` (taskified).
    pub fn sum_to_all_u64(&self, mine: Vec<u64>) -> Vec<u64> {
        let raw = Arc::clone(&self.raw);
        let bytes = (mine.len() * 8) as u64;
        self.taskify("sum_to_all", bytes, move || raw.sum_to_all_u64(&mine))
    }

    /// `shmem_double_sum_to_all` (taskified).
    pub fn sum_to_all_f64(&self, mine: Vec<f64>) -> Vec<f64> {
        let raw = Arc::clone(&self.raw);
        let bytes = (mine.len() * 8) as u64;
        self.taskify("sum_to_all", bytes, move || raw.sum_to_all_f64(&mine))
    }

    /// Count exchange (taskified `alltoall64`).
    pub fn alltoall64(&self, mine: Vec<u64>) -> Vec<u64> {
        let raw = Arc::clone(&self.raw);
        let bytes = (mine.len() * 8) as u64;
        self.taskify("alltoall", bytes, move || raw.alltoall64(&mine))
    }

    // ------------------------------------------------------------------
    // Future-based extensions (the paper's novel APIs)
    // ------------------------------------------------------------------

    /// Nonblocking get: returns a future on the fetched bytes. The reply
    /// satisfies the future directly from the delivery engine; any HiPER
    /// task can be predicated on it.
    pub fn get_nbi(&self, target: Rank, offset: usize, nbytes: usize) -> Future<Bytes> {
        let promise = Promise::new();
        let fut = promise.future();
        self.raw
            .get_cb(target, offset, nbytes, Box::new(move |b| promise.put(b)));
        fut
    }

    /// Nonblocking fetch-add: returns a future on the old value.
    pub fn fadd_nbi(&self, target: Rank, offset: usize, delta: u64) -> Future<u64> {
        let promise = Promise::new();
        let fut = promise.future();
        self.raw
            .fadd_cb(target, offset, delta, Box::new(move |v| promise.put(v)));
        fut
    }

    /// A future satisfied once the local symmetric value at `offset`
    /// satisfies `cmp value` (`shmem_wait_until` without blocking anything).
    pub fn until_future(&self, offset: usize, cmp: Cmp, value: i64) -> Future<()> {
        let promise = Promise::new();
        let fut = promise.future();
        self.raw
            .register_when(offset, cmp, value, Box::new(move || promise.put(())));
        fut
    }

    /// **`shmem_async_when`** (paper §II-C2): makes a task's execution
    /// predicated on a put by a remote process:
    ///
    /// ```ignore
    /// shmem.async_when(flag_off, Cmp::Eq, 1, move || { /* body */ });
    /// ```
    ///
    /// The body registers with the *current finish scope* immediately, like
    /// every `async_await`-family API, so enclosing `finish` blocks wait for
    /// it.
    pub fn async_when(
        &self,
        offset: usize,
        cmp: Cmp,
        value: i64,
        body: impl FnOnce() + Send + 'static,
    ) {
        let fut = self.until_future(offset, cmp, value);
        self.with_state(|state| state.rt.spawn_await(&fut, body));
    }

    /// `shmem_wait_until`, help-first: blocks the calling *task* (not the
    /// core) until the condition holds.
    pub fn wait_until(&self, offset: usize, cmp: Cmp, value: i64) {
        self.until_future(offset, cmp, value).wait();
    }

    /// Signalled local store (wakes local `wait_until` / `async_when`).
    pub fn store_local_i64(&self, offset: usize, value: i64) {
        self.raw.store_local_i64(offset, value);
    }
}

impl SchedulerModule for ShmemModule {
    fn name(&self) -> &'static str {
        "shmem"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        let interconnect = rt.place_of_kind(&PlaceKind::Interconnect).ok_or_else(|| {
            ModuleError::new("shmem", "platform model contains no Interconnect place")
        })?;
        *self.state.write() = Some(ModuleState {
            rt: rt.clone(),
            interconnect,
        });
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        *self.state.write() = None;
    }
}

impl std::fmt::Debug for ShmemModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShmemModule(pe {}/{})", self.rank(), self.nranks())
    }
}
