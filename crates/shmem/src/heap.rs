//! The symmetric heap.
//!
//! Every rank owns one heap of identical size; objects are allocated
//! collectively (same SPMD order on every rank), so an offset is valid on
//! every rank — the OpenSHMEM symmetric-address property. Remote puts/gets
//! are *true one-sided accesses*: the delivery engine writes directly into
//! the target heap with no involvement from the target's worker threads,
//! modeling RDMA.
//!
//! Because remote writes genuinely race with local polling reads
//! (`shmem_wait_until`), the heap is stored as a word array of `AtomicU64`;
//! bulk transfers use relaxed word stores with release/acquire fences at the
//! operation boundaries, and unaligned edges use CAS read-modify-write so
//! neighboring bytes are never clobbered.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One rank's symmetric heap.
pub struct SymHeap {
    words: Box<[AtomicU64]>,
}

impl SymHeap {
    /// Allocates a zeroed heap of `bytes` (rounded up to a word multiple).
    pub fn new(bytes: usize) -> SymHeap {
        let nwords = bytes.div_ceil(8);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        SymHeap { words }
    }

    /// Heap capacity in bytes.
    pub fn len(&self) -> usize {
        self.words.len() * 8
    }

    /// True for a zero-capacity heap.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Bulk write of `data` at byte `offset` (one-sided put target side).
    pub fn write_bytes(&self, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= self.len(), "heap write out of range");
        let mut off = offset;
        let mut src = data;
        // Leading partial word.
        if !off.is_multiple_of(8) {
            let take = (8 - off % 8).min(src.len());
            self.rmw_bytes(off, &src[..take]);
            off += take;
            src = &src[take..];
        }
        // Full words.
        let mut chunks = src.chunks_exact(8);
        for chunk in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            self.words[off / 8].store(u64::from_le_bytes(w), Ordering::Relaxed);
            off += 8;
        }
        // Trailing partial word.
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.rmw_bytes(off, rest);
        }
        // Publish the bulk write.
        fence(Ordering::Release);
    }

    /// Bulk read of `out.len()` bytes at byte `offset`.
    pub fn read_bytes(&self, offset: usize, out: &mut [u8]) {
        assert!(offset + out.len() <= self.len(), "heap read out of range");
        fence(Ordering::Acquire);
        let mut off = offset;
        let mut dst = &mut out[..];
        while !dst.is_empty() {
            let word = self.words[off / 8].load(Ordering::Relaxed).to_le_bytes();
            let start = off % 8;
            let take = (8 - start).min(dst.len());
            dst[..take].copy_from_slice(&word[start..start + take]);
            off += take;
            dst = &mut dst[take..];
        }
    }

    /// Read-modify-write of a partial word, preserving neighboring bytes.
    fn rmw_bytes(&self, offset: usize, data: &[u8]) {
        let word_idx = offset / 8;
        let start = offset % 8;
        debug_assert!(start + data.len() <= 8);
        let word = &self.words[word_idx];
        let mut current = word.load(Ordering::Relaxed);
        loop {
            let mut bytes = current.to_le_bytes();
            bytes[start..start + data.len()].copy_from_slice(data);
            match word.compare_exchange_weak(
                current,
                u64::from_le_bytes(bytes),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    fn word_at(&self, offset: usize) -> &AtomicU64 {
        assert_eq!(offset % 8, 0, "atomic heap access must be 8-byte aligned");
        &self.words[offset / 8]
    }

    /// Atomic 64-bit load (acquire).
    pub fn load_u64(&self, offset: usize) -> u64 {
        self.word_at(offset).load(Ordering::Acquire)
    }

    /// Atomic 64-bit store (release).
    pub fn store_u64(&self, offset: usize, value: u64) {
        self.word_at(offset).store(value, Ordering::Release);
    }

    /// Atomic fetch-add (AcqRel); returns the old value.
    pub fn fetch_add_u64(&self, offset: usize, delta: u64) -> u64 {
        self.word_at(offset).fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomic compare-and-swap (AcqRel); returns the old value.
    pub fn compare_swap_u64(&self, offset: usize, expected: u64, desired: u64) -> u64 {
        match self.word_at(offset).compare_exchange(
            expected,
            desired,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(old) => old,
            Err(old) => old,
        }
    }

    /// Signed 64-bit view helpers (OpenSHMEM's `long long` APIs).
    pub fn load_i64(&self, offset: usize) -> i64 {
        self.load_u64(offset) as i64
    }

    /// Atomic signed store.
    pub fn store_i64(&self, offset: usize, value: i64) {
        self.store_u64(offset, value as u64);
    }
}

impl std::fmt::Debug for SymHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymHeap")
            .field("bytes", &self.len())
            .finish()
    }
}

/// A symmetric allocation: a (offset, length) pair valid on every rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymPtr {
    /// Byte offset within every rank's heap.
    pub offset: usize,
    /// Allocation length in bytes.
    pub len: usize,
}

impl SymPtr {
    /// A sub-range of this allocation (byte granular).
    pub fn slice(&self, from: usize, len: usize) -> SymPtr {
        assert!(from + len <= self.len, "symmetric slice out of range");
        SymPtr {
            offset: self.offset + from,
            len,
        }
    }

    /// Byte offset of element `i` for 8-byte element types.
    pub fn at64(&self, i: usize) -> usize {
        let off = self.offset + i * 8;
        assert!(
            off + 8 <= self.offset + self.len,
            "element index out of range"
        );
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn aligned_roundtrip() {
        let h = SymHeap::new(64);
        h.write_bytes(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut out = [0u8; 10];
        h.read_bytes(0, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn unaligned_write_preserves_neighbors() {
        let h = SymHeap::new(32);
        h.write_bytes(0, &[0xFF; 32]);
        h.write_bytes(3, &[0, 0, 0]);
        let mut out = [0u8; 32];
        h.read_bytes(0, &mut out);
        assert_eq!(out[0..3], [0xFF; 3]);
        assert_eq!(out[3..6], [0, 0, 0]);
        assert_eq!(out[6..32], [0xFF; 26]);
    }

    #[test]
    fn cross_word_unaligned_roundtrip() {
        let h = SymHeap::new(64);
        let data: Vec<u8> = (0..23).collect();
        h.write_bytes(5, &data);
        let mut out = vec![0u8; 23];
        h.read_bytes(5, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn atomics() {
        let h = SymHeap::new(32);
        h.store_u64(8, 41);
        assert_eq!(h.load_u64(8), 41);
        assert_eq!(h.fetch_add_u64(8, 1), 41);
        assert_eq!(h.load_u64(8), 42);
        assert_eq!(h.compare_swap_u64(8, 42, 100), 42);
        assert_eq!(h.load_u64(8), 100);
        assert_eq!(
            h.compare_swap_u64(8, 42, 7),
            100,
            "failed CAS returns current"
        );
        assert_eq!(h.load_u64(8), 100);
        h.store_i64(16, -5);
        assert_eq!(h.load_i64(16), -5);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_atomic_panics() {
        let h = SymHeap::new(32);
        h.load_u64(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_write_panics() {
        let h = SymHeap::new(16);
        h.write_bytes(10, &[0u8; 10]);
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let h = Arc::new(SymHeap::new(16));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        h.fetch_add_u64(0, 1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.load_u64(0), 40_000);
    }

    #[test]
    fn symptr_slicing() {
        let p = SymPtr {
            offset: 64,
            len: 80,
        };
        let s = p.slice(16, 8);
        assert_eq!(s.offset, 80);
        assert_eq!(s.len, 8);
        assert_eq!(p.at64(2), 80);
    }
}
