//! The underlying OpenSHMEM library (the role Cray SHMEM plays in the
//! paper): one-sided put/get, remote atomics, point-to-point synchronization
//! (`wait_until`), `quiet`, and the collective calls the benchmarks use.
//!
//! Remote operations are active messages executed *at the target's heap* by
//! the delivery engine — the target's compute threads are never involved,
//! modeling RDMA. Per-pair FIFO delivery gives OpenSHMEM's put-ordering
//! guarantees, and `quiet` is an acknowledged no-op that flushes each dirty
//! link.
//!
//! Blocking calls park the calling OS thread (what the paper's flat-SHMEM
//! baselines pay); the HiPER module in [`crate::module`] wraps these
//! primitives in tasks and futures.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use hiper_netsim::{Channel, Message, Rank, ReliableTransport, RetryConfig, Transport};
use hiper_runtime::ModuleError;
use parking_lot::{Condvar, Mutex};

use crate::heap::{SymHeap, SymPtr};

/// Comparison operators for `wait_until` / `async_when` (OpenSHMEM
/// `SHMEM_CMP_*`), evaluated on signed 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
}

impl Cmp {
    /// Evaluates `lhs <cmp> rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }
}

// Wire opcodes (tag bits 56..64).
mod op {
    pub const PUT: u8 = 1;
    pub const GET_REQ: u8 = 2;
    pub const GET_REP: u8 = 3;
    pub const AMO_REQ: u8 = 4;
    pub const AMO_REP: u8 = 5;
    pub const ACK_REQ: u8 = 6;
    pub const ACK_REP: u8 = 7;
    pub const COLL: u8 = 8;
}

// Atomic sub-opcodes (tag bits 48..56 of AMO_REQ).
mod amo {
    pub const FADD: u8 = 1;
    pub const CSWAP: u8 = 2;
}

mod collop {
    pub const BARRIER: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const REDUCE: u8 = 3;
    pub const ALLTOALL: u8 = 4;
}

fn tag(opcode: u8, aux: u8, low: u64) -> u64 {
    ((opcode as u64) << 56) | ((aux as u64) << 48) | (low & 0xFFFF_FFFF_FFFF)
}

fn tag_opcode(t: u64) -> u8 {
    (t >> 56) as u8
}

fn tag_aux(t: u64) -> u8 {
    (t >> 48) as u8
}

fn tag_low(t: u64) -> u64 {
    t & 0xFFFF_FFFF_FFFF
}

fn coll_tag(cop: u8, round: u8, seq: u64) -> u64 {
    tag(
        op::COLL,
        cop,
        ((round as u64) << 40) | (seq & 0xFF_FFFF_FFFF),
    )
}

/// One-shot reply slot: completed exactly once with the reply payload;
/// consumers either block (`wait`) or attach a callback.
pub(crate) struct OneShot {
    state: Mutex<OneShotState>,
    cond: Condvar,
}

enum OneShotState {
    Waiting(Option<Box<dyn FnOnce(Bytes) + Send>>),
    Done(Bytes),
}

impl OneShot {
    fn new() -> Arc<OneShot> {
        Arc::new(OneShot {
            state: Mutex::new(OneShotState::Waiting(None)),
            cond: Condvar::new(),
        })
    }

    fn with_callback(cb: Box<dyn FnOnce(Bytes) + Send>) -> Arc<OneShot> {
        Arc::new(OneShot {
            state: Mutex::new(OneShotState::Waiting(Some(cb))),
            cond: Condvar::new(),
        })
    }

    fn complete(&self, data: Bytes) {
        let mut st = self.state.lock();
        match std::mem::replace(&mut *st, OneShotState::Done(data.clone())) {
            OneShotState::Waiting(Some(cb)) => {
                drop(st);
                cb(data);
            }
            OneShotState::Waiting(None) => {
                self.cond.notify_all();
            }
            OneShotState::Done(_) => panic!("reply slot completed twice"),
        }
    }

    fn wait(&self) -> Bytes {
        let mut st = self.state.lock();
        loop {
            if let OneShotState::Done(data) = &*st {
                return data.clone();
            }
            self.cond.wait(&mut st);
        }
    }
}

/// A registered `async_when` predicate.
struct WhenEntry {
    offset: usize,
    cmp: Cmp,
    value: i64,
    fire: Option<Box<dyn FnOnce() + Send>>,
}

/// Cluster-wide shared symmetric heaps. Create one per cluster, clone into
/// each rank's setup.
#[derive(Clone)]
pub struct ShmemWorld {
    heaps: Arc<Vec<Arc<SymHeap>>>,
}

impl ShmemWorld {
    /// Allocates `nranks` heaps of `heap_bytes` each.
    pub fn new(nranks: usize, heap_bytes: usize) -> ShmemWorld {
        ShmemWorld {
            heaps: Arc::new(
                (0..nranks)
                    .map(|_| Arc::new(SymHeap::new(heap_bytes)))
                    .collect(),
            ),
        }
    }

    /// The heap of `rank`.
    pub fn heap(&self, rank: Rank) -> &Arc<SymHeap> {
        &self.heaps[rank]
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.heaps.len()
    }
}

/// One rank's endpoint of the raw SHMEM library.
///
/// Traffic is routed through a [`ReliableTransport`]: a pass-through with
/// no armed fault plan, acked/retransmitted/resequenced delivery under
/// fault injection (put-ordering survives drops and reordering).
pub struct RawShmem {
    world: ShmemWorld,
    transport: Arc<ReliableTransport>,
    alloc_next: Mutex<usize>,
    slots: Mutex<HashMap<u64, Arc<OneShot>>>,
    next_slot: AtomicU64,
    dirty: Mutex<HashSet<Rank>>,
    /// Local-change notification: epoch bumped whenever this rank's heap is
    /// mutated by a remote op (or an explicit signalled local store).
    change_epoch: Mutex<u64>,
    change_cond: Condvar,
    whens: Mutex<Vec<WhenEntry>>,
    coll: Mutex<HashMap<(Rank, u64), VecDeque<Bytes>>>,
    coll_cond: Condvar,
    coll_seq: AtomicU64,
    /// First wire-protocol violation seen by the delivery handler (malformed
    /// frame, unknown opcode). The frame is dropped, not panicked on; the
    /// error surfaces through [`health`](RawShmem::health).
    wire_error: Mutex<Option<ModuleError>>,
}

impl RawShmem {
    /// Creates the endpoint and registers its delivery handler.
    pub fn new(world: ShmemWorld, transport: Transport) -> Arc<RawShmem> {
        assert_eq!(
            world.nranks(),
            transport.nranks(),
            "world size must match cluster size"
        );
        let rel = ReliableTransport::new(transport, "shmem", RetryConfig::default());
        let raw = Arc::new(RawShmem {
            world,
            transport: rel,
            alloc_next: Mutex::new(0),
            slots: Mutex::new(HashMap::new()),
            next_slot: AtomicU64::new(1),
            dirty: Mutex::new(HashSet::new()),
            change_epoch: Mutex::new(0),
            change_cond: Condvar::new(),
            whens: Mutex::new(Vec::new()),
            coll: Mutex::new(HashMap::new()),
            coll_cond: Condvar::new(),
            coll_seq: AtomicU64::new(0),
            wire_error: Mutex::new(None),
        });
        let raw2 = Arc::clone(&raw);
        raw.transport
            .register_handler(Channel::SHMEM, Box::new(move |m| raw2.on_message(m)));
        raw
    }

    /// Endpoint health: `Err` once any peer has exhausted its reliable
    /// retry budget (fault injection only) or the delivery handler has
    /// dropped a malformed wire frame.
    pub fn health(&self) -> Result<(), ModuleError> {
        if let Some(e) = self.wire_error.lock().clone() {
            return Err(e);
        }
        self.transport.health()
    }

    /// Records a wire-protocol violation (first one wins) instead of
    /// panicking the delivery-engine thread; the offending frame is dropped.
    fn wire_fault(&self, detail: String) {
        let mut slot = self.wire_error.lock();
        if slot.is_none() {
            *slot = Some(ModuleError::protocol("shmem", detail));
        }
    }

    /// The underlying reliable transport. Recovery drivers use this to
    /// quiesce peers, renegotiate epochs after a restart, and publish
    /// checkpoint watermarks for replay-log garbage collection.
    pub fn reliable(&self) -> &Arc<ReliableTransport> {
        &self.transport
    }

    /// Serializes this endpoint's private (non-heap) mutable state for a
    /// checkpoint: the symmetric-allocator bump pointer, the collective
    /// sequence counter, and the *pending-recv* buffers — contributions
    /// already delivered by peers for collectives this rank has not
    /// consumed yet (a fast peer past a barrier may have sent its
    /// next-collective contribution before our snapshot). Omitting those
    /// would lose them forever: their frames sit below the reliable-
    /// transport recv watermark and are never redelivered on restart.
    ///
    /// Victim-side in-flight bookkeeping (one-shot completion slots,
    /// `when` registrations, dirty-rank marks) is *not* captured: at a
    /// checkpoint's quiescent point (post-barrier, post-quiet) this rank
    /// has no outstanding issued ops, and a crash discards anything that
    /// appeared since — [`restore_state`](RawShmem::restore_state) clears
    /// it.
    pub fn state_snapshot(&self) -> Vec<u8> {
        let coll = self.coll.lock();
        let mut entries: Vec<(&(Rank, u64), &VecDeque<Bytes>)> = coll.iter().collect();
        entries.sort_by_key(|(k, _)| **k); // deterministic image
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&(*self.alloc_next.lock() as u64).to_le_bytes());
        out.extend_from_slice(&self.coll_seq.load(Ordering::SeqCst).to_le_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for ((rank, seq), msgs) in entries {
            out.extend_from_slice(&(*rank as u64).to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(msgs.len() as u64).to_le_bytes());
            for m in msgs {
                out.extend_from_slice(&(m.len() as u64).to_le_bytes());
                out.extend_from_slice(m);
            }
        }
        out
    }

    /// Rolls this endpoint's private state back to an image produced by
    /// [`state_snapshot`](RawShmem::state_snapshot): restores the
    /// allocator bump pointer, collective counter, and pending-recv
    /// buffers, and discards all in-flight bookkeeping accumulated since
    /// (one-shot slots, `when` registrations, dirty marks). Called on the
    /// victim rank after its heap image is restored, *before* replay
    /// re-executes the window since the checkpoint.
    pub fn restore_state(&self, image: &[u8]) {
        let rd =
            |off: usize| -> u64 { u64::from_le_bytes(image[off..off + 8].try_into().unwrap()) };
        let alloc_next = rd(0) as usize;
        let coll_seq = rd(8);
        let n_entries = rd(16);
        let mut coll_new: HashMap<(Rank, u64), VecDeque<Bytes>> = HashMap::new();
        let mut off = 24;
        for _ in 0..n_entries {
            let rank = rd(off) as Rank;
            let seq = rd(off + 8);
            let n_msgs = rd(off + 16);
            off += 24;
            let q = coll_new.entry((rank, seq)).or_default();
            for _ in 0..n_msgs {
                let len = rd(off) as usize;
                off += 8;
                q.push_back(Bytes::copy_from_slice(&image[off..off + len]));
                off += len;
            }
        }
        *self.alloc_next.lock() = alloc_next;
        self.coll_seq.store(coll_seq, Ordering::SeqCst);
        *self.coll.lock() = coll_new;
        self.slots.lock().clear();
        self.whens.lock().clear();
        self.dirty.lock().clear();
        // Wake anyone parked on heap-change or collective conditions so
        // they re-evaluate against the restored state.
        self.change_cond.notify_all();
        self.coll_cond.notify_all();
    }

    /// Retransmissions performed so far (0 without fault injection).
    pub fn retries(&self) -> u64 {
        self.transport.retry_count()
    }

    /// This rank (`shmem_my_pe`).
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Cluster size (`shmem_n_pes`).
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// This rank's heap (for local symmetric-object access).
    pub fn heap(&self) -> &Arc<SymHeap> {
        self.world.heap(self.rank())
    }

    /// Symmetric allocation (`shmem_malloc`): every rank must call in the
    /// same order with the same size. 16-byte aligned.
    pub fn malloc(&self, nbytes: usize) -> SymPtr {
        let mut next = self.alloc_next.lock();
        let offset = (*next + 15) & !15;
        assert!(
            offset + nbytes <= self.heap().len(),
            "symmetric heap exhausted ({} + {} > {})",
            offset,
            nbytes,
            self.heap().len()
        );
        *next = offset + nbytes;
        SymPtr {
            offset,
            len: nbytes,
        }
    }

    /// Symmetric allocation of `n` 64-bit elements.
    pub fn malloc64(&self, n: usize) -> SymPtr {
        self.malloc(n * 8)
    }

    /// Resets the symmetric allocator to `watermark` (a value previously
    /// returned by [`alloc_watermark`](Self::alloc_watermark)). For
    /// benchmark harnesses that re-run an allocation-heavy phase many times;
    /// must be called collectively (all ranks, between barriers) and
    /// invalidates every allocation made after the watermark.
    pub fn reset_alloc(&self, watermark: usize) {
        *self.alloc_next.lock() = watermark;
    }

    /// Current allocator position, for later [`reset_alloc`](Self::reset_alloc).
    pub fn alloc_watermark(&self) -> usize {
        *self.alloc_next.lock()
    }

    // ------------------------------------------------------------------
    // Message handling (runs on the delivery-engine thread)
    // ------------------------------------------------------------------

    fn on_message(&self, msg: Message) {
        let t = msg.tag;
        // Validate frame length before parsing: a truncated header must
        // drop the frame with a typed error, not panic the engine thread.
        let need = match tag_opcode(t) {
            op::PUT => 8,
            op::GET_REQ => 16,
            op::AMO_REQ => 24,
            _ => 0,
        };
        if msg.payload.len() < need {
            self.wire_fault(format!(
                "opcode {} frame from rank {} is {} bytes, need {}",
                tag_opcode(t),
                msg.src,
                msg.payload.len(),
                need
            ));
            return;
        }
        match tag_opcode(t) {
            op::PUT => {
                let (offset, data) = split_header(&msg.payload);
                self.heap().write_bytes(offset as usize, data);
                self.notify_local_change();
            }
            op::GET_REQ => {
                let mut hdr = [0u8; 16];
                hdr.copy_from_slice(&msg.payload[..16]);
                let offset = u64::from_le_bytes(hdr[..8].try_into().unwrap()) as usize;
                let nbytes = u64::from_le_bytes(hdr[8..].try_into().unwrap()) as usize;
                let mut out = vec![0u8; nbytes];
                self.heap().read_bytes(offset, &mut out);
                self.transport.send(
                    msg.src,
                    Channel::SHMEM,
                    tag(op::GET_REP, 0, tag_low(t)),
                    Bytes::from(out),
                );
            }
            op::AMO_REQ => {
                let p = &msg.payload;
                let offset = u64::from_le_bytes(p[..8].try_into().unwrap()) as usize;
                let a = u64::from_le_bytes(p[8..16].try_into().unwrap());
                let b = u64::from_le_bytes(p[16..24].try_into().unwrap());
                let old = match tag_aux(t) {
                    amo::FADD => self.heap().fetch_add_u64(offset, a),
                    amo::CSWAP => self.heap().compare_swap_u64(offset, a, b),
                    other => {
                        self.wire_fault(format!(
                            "unknown atomic sub-op {} from rank {}",
                            other, msg.src
                        ));
                        return;
                    }
                };
                self.notify_local_change();
                self.transport.send(
                    msg.src,
                    Channel::SHMEM,
                    tag(op::AMO_REP, 0, tag_low(t)),
                    Bytes::copy_from_slice(&old.to_le_bytes()),
                );
            }
            op::ACK_REQ => {
                self.transport.send(
                    msg.src,
                    Channel::SHMEM,
                    tag(op::ACK_REP, 0, tag_low(t)),
                    Bytes::new(),
                );
            }
            op::GET_REP | op::AMO_REP | op::ACK_REP => {
                let slot = self.slots.lock().remove(&tag_low(t));
                if let Some(slot) = slot {
                    slot.complete(msg.payload);
                }
            }
            op::COLL => {
                let mut coll = self.coll.lock();
                coll.entry((msg.src, t)).or_default().push_back(msg.payload);
                self.coll_cond.notify_all();
            }
            other => self.wire_fault(format!("unknown opcode {} from rank {}", other, msg.src)),
        }
    }

    fn notify_local_change(&self) {
        {
            let mut epoch = self.change_epoch.lock();
            *epoch += 1;
            self.change_cond.notify_all();
        }
        // Sweep async_when registrations.
        let fired: Vec<Box<dyn FnOnce() + Send>> = {
            let heap = self.heap();
            let mut whens = self.whens.lock();
            let mut fired = Vec::new();
            whens.retain_mut(|w| {
                if w.cmp.eval(heap.load_i64(w.offset), w.value) {
                    if let Some(f) = w.fire.take() {
                        fired.push(f);
                    }
                    false
                } else {
                    true
                }
            });
            fired
        };
        for f in fired {
            f();
        }
    }

    fn new_slot(&self, cb: Option<Box<dyn FnOnce(Bytes) + Send>>) -> (u64, Arc<OneShot>) {
        let id = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let slot = match cb {
            Some(cb) => OneShot::with_callback(cb),
            None => OneShot::new(),
        };
        self.slots.lock().insert(id, Arc::clone(&slot));
        (id, slot)
    }

    // ------------------------------------------------------------------
    // One-sided operations
    // ------------------------------------------------------------------

    /// `shmem_putmem`: copies `data` into `target`'s heap at `offset`.
    /// Completes locally as soon as the payload is handed to the transport
    /// (buffered put); use [`quiet`](Self::quiet) or a barrier for remote
    /// completion.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) {
        let mut payload = BytesMut::with_capacity(8 + data.len());
        payload.put_u64_le(offset as u64);
        payload.put_slice(data);
        self.dirty.lock().insert(target);
        self.transport
            .send(target, Channel::SHMEM, tag(op::PUT, 0, 0), payload.freeze());
    }

    /// Typed put of 64-bit values.
    pub fn put64(&self, target: Rank, offset: usize, values: &[u64]) {
        self.put(target, offset, &hiper_netsim::pod::to_bytes(values));
    }

    /// `shmem_getmem` with a completion callback (runs on the delivery
    /// thread; must be cheap).
    pub fn get_cb(
        &self,
        target: Rank,
        offset: usize,
        nbytes: usize,
        cb: Box<dyn FnOnce(Bytes) + Send>,
    ) {
        if target == self.rank() {
            // Local fast path.
            let mut out = vec![0u8; nbytes];
            self.heap().read_bytes(offset, &mut out);
            cb(Bytes::from(out));
            return;
        }
        let (id, _slot) = self.new_slot(Some(cb));
        let mut payload = BytesMut::with_capacity(16);
        payload.put_u64_le(offset as u64);
        payload.put_u64_le(nbytes as u64);
        self.transport.send(
            target,
            Channel::SHMEM,
            tag(op::GET_REQ, 0, id),
            payload.freeze(),
        );
    }

    /// Blocking `shmem_getmem`.
    pub fn get(&self, target: Rank, offset: usize, nbytes: usize) -> Bytes {
        if target == self.rank() {
            let mut out = vec![0u8; nbytes];
            self.heap().read_bytes(offset, &mut out);
            return Bytes::from(out);
        }
        let (id, slot) = self.new_slot(None);
        let mut payload = BytesMut::with_capacity(16);
        payload.put_u64_le(offset as u64);
        payload.put_u64_le(nbytes as u64);
        self.transport.send(
            target,
            Channel::SHMEM,
            tag(op::GET_REQ, 0, id),
            payload.freeze(),
        );
        slot.wait()
    }

    fn amo(
        &self,
        target: Rank,
        sub: u8,
        offset: usize,
        a: u64,
        b: u64,
        cb: Option<Box<dyn FnOnce(Bytes) + Send>>,
    ) -> Option<Arc<OneShot>> {
        let (id, slot) = self.new_slot(cb);
        let mut payload = BytesMut::with_capacity(24);
        payload.put_u64_le(offset as u64);
        payload.put_u64_le(a);
        payload.put_u64_le(b);
        self.dirty.lock().insert(target);
        self.transport.send(
            target,
            Channel::SHMEM,
            tag(op::AMO_REQ, sub, id),
            payload.freeze(),
        );
        Some(slot)
    }

    /// Blocking `shmem_atomic_fetch_add` on a remote 64-bit value.
    pub fn fadd(&self, target: Rank, offset: usize, delta: u64) -> u64 {
        if target == self.rank() {
            let old = self.heap().fetch_add_u64(offset, delta);
            self.notify_local_change();
            return old;
        }
        let slot = self.amo(target, amo::FADD, offset, delta, 0, None).unwrap();
        u64::from_le_bytes(slot.wait()[..8].try_into().unwrap())
    }

    /// Fetch-add with a completion callback.
    pub fn fadd_cb(
        &self,
        target: Rank,
        offset: usize,
        delta: u64,
        cb: Box<dyn FnOnce(u64) + Send>,
    ) {
        if target == self.rank() {
            let old = self.heap().fetch_add_u64(offset, delta);
            self.notify_local_change();
            cb(old);
            return;
        }
        self.amo(
            target,
            amo::FADD,
            offset,
            delta,
            0,
            Some(Box::new(move |b: Bytes| {
                cb(u64::from_le_bytes(b[..8].try_into().unwrap()))
            })),
        );
    }

    /// Blocking `shmem_atomic_compare_swap`; returns the old value.
    pub fn cswap(&self, target: Rank, offset: usize, expected: u64, desired: u64) -> u64 {
        if target == self.rank() {
            let old = self.heap().compare_swap_u64(offset, expected, desired);
            self.notify_local_change();
            return old;
        }
        let slot = self
            .amo(target, amo::CSWAP, offset, expected, desired, None)
            .unwrap();
        u64::from_le_bytes(slot.wait()[..8].try_into().unwrap())
    }

    /// Signalled local store: writes a local symmetric 64-bit value and
    /// wakes local `wait_until`/`async_when` registrations.
    pub fn store_local_i64(&self, offset: usize, value: i64) {
        self.heap().store_i64(offset, value);
        self.notify_local_change();
    }

    /// `shmem_quiet`: blocks until every outstanding put/atomic issued by
    /// this rank has been applied at its target (flush of dirty links via
    /// acknowledged no-ops behind the FIFO traffic).
    pub fn quiet(&self) {
        // Self is included: puts to self also traverse the (loopback)
        // transport, so they too need flushing.
        let targets: Vec<Rank> = self.dirty.lock().drain().collect();
        let slots: Vec<Arc<OneShot>> = targets
            .into_iter()
            .map(|t| {
                let (id, slot) = self.new_slot(None);
                self.transport
                    .send(t, Channel::SHMEM, tag(op::ACK_REQ, 0, id), Bytes::new());
                slot
            })
            .collect();
        for slot in slots {
            slot.wait();
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point synchronization
    // ------------------------------------------------------------------

    /// Blocking `shmem_wait_until` on a local symmetric 64-bit value. Parks
    /// the calling OS thread (the blocking behaviour the paper's
    /// `shmem_async_when` was invented to avoid, §II-C2).
    pub fn wait_until(&self, offset: usize, cmp: Cmp, value: i64) {
        loop {
            if cmp.eval(self.heap().load_i64(offset), value) {
                return;
            }
            let mut epoch = self.change_epoch.lock();
            // Re-check under the lock to avoid a lost wakeup.
            if cmp.eval(self.heap().load_i64(offset), value) {
                return;
            }
            let seen = *epoch;
            while *epoch == seen {
                self.change_cond.wait(&mut epoch);
            }
        }
    }

    /// Registers `fire` to run (on the delivery thread) once the local
    /// 64-bit value at `offset` satisfies `cmp value`. Fires immediately if
    /// it already does. Building block of the module's `shmem_async_when`.
    pub fn register_when(
        &self,
        offset: usize,
        cmp: Cmp,
        value: i64,
        fire: Box<dyn FnOnce() + Send>,
    ) {
        {
            let mut whens = self.whens.lock();
            if !cmp.eval(self.heap().load_i64(offset), value) {
                whens.push(WhenEntry {
                    offset,
                    cmp,
                    value,
                    fire: Some(fire),
                });
                return;
            }
        }
        fire();
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    fn next_seq(&self) -> u64 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn coll_send(&self, dst: Rank, t: u64, data: Bytes) {
        self.transport.send(dst, Channel::SHMEM, t, data);
    }

    fn coll_recv(&self, src: Rank, t: u64) -> Bytes {
        let mut coll = self.coll.lock();
        loop {
            if let Some(queue) = coll.get_mut(&(src, t)) {
                if let Some(data) = queue.pop_front() {
                    if queue.is_empty() {
                        coll.remove(&(src, t));
                    }
                    return data;
                }
            }
            self.coll_cond.wait(&mut coll);
        }
    }

    /// `shmem_barrier_all`: quiet + dissemination barrier.
    pub fn barrier_all(&self) {
        self.quiet();
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        let mut dist = 1usize;
        let mut round = 0u8;
        while dist < p {
            let dst = (me + dist) % p;
            let src = (me + p - dist) % p;
            self.coll_send(dst, coll_tag(collop::BARRIER, round, seq), Bytes::new());
            let _ = self.coll_recv(src, coll_tag(collop::BARRIER, round, seq));
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial broadcast of a byte payload from `root`.
    pub fn broadcast(&self, root: Rank, data: Bytes) -> Bytes {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        if p == 1 {
            return data;
        }
        let rel = (me + p - root) % p;
        let mut buf = data;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src = (me + p - mask) % p;
                buf = self.coll_recv(src, coll_tag(collop::BCAST, 0, seq));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst = (me + mask) % p;
                self.coll_send(dst, coll_tag(collop::BCAST, 0, seq), buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Reduce-to-zero + broadcast with a caller combine (`*_to_all`).
    pub fn to_all_bytes(&self, mine: Bytes, combine: &dyn Fn(&[u8], &[u8]) -> Bytes) -> Bytes {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        let mut acc = mine;
        let mut mask = 1usize;
        let mut reduced = true;
        while mask < p {
            if me & mask != 0 {
                self.coll_send(me - mask, coll_tag(collop::REDUCE, 0, seq), acc.clone());
                reduced = false;
                break;
            }
            let src = me + mask;
            if src < p {
                let other = self.coll_recv(src, coll_tag(collop::REDUCE, 0, seq));
                acc = combine(&acc, &other);
            }
            mask <<= 1;
        }
        let _ = reduced;
        self.broadcast(0, if me == 0 { acc } else { Bytes::new() })
    }

    /// `shmem_longlong_sum_to_all` over a u64 vector.
    pub fn sum_to_all_u64(&self, mine: &[u64]) -> Vec<u64> {
        let out = self.to_all_bytes(hiper_netsim::pod::to_bytes(mine), &|a, b| {
            let mut av: Vec<u64> = hiper_netsim::pod::from_bytes(a);
            let bv: Vec<u64> = hiper_netsim::pod::from_bytes(b);
            for (x, y) in av.iter_mut().zip(bv) {
                *x = x.wrapping_add(y);
            }
            hiper_netsim::pod::to_bytes(&av)
        });
        hiper_netsim::pod::from_bytes(&out)
    }

    /// `shmem_double_sum_to_all`.
    pub fn sum_to_all_f64(&self, mine: &[f64]) -> Vec<f64> {
        let out = self.to_all_bytes(hiper_netsim::pod::to_bytes(mine), &|a, b| {
            let mut av: Vec<f64> = hiper_netsim::pod::from_bytes(a);
            let bv: Vec<f64> = hiper_netsim::pod::from_bytes(b);
            for (x, y) in av.iter_mut().zip(bv) {
                *x += y;
            }
            hiper_netsim::pod::to_bytes(&av)
        });
        hiper_netsim::pod::from_bytes(&out)
    }

    /// `shmem_longlong_max_to_all`.
    pub fn max_to_all_i64(&self, mine: &[i64]) -> Vec<i64> {
        let out = self.to_all_bytes(hiper_netsim::pod::to_bytes(mine), &|a, b| {
            let mut av: Vec<i64> = hiper_netsim::pod::from_bytes(a);
            let bv: Vec<i64> = hiper_netsim::pod::from_bytes(b);
            for (x, y) in av.iter_mut().zip(bv) {
                *x = (*x).max(y);
            }
            hiper_netsim::pod::to_bytes(&av)
        });
        hiper_netsim::pod::from_bytes(&out)
    }

    /// Element exchange: rank `d` receives `mine[d]` from every rank,
    /// returned indexed by source (the count exchange of ISx).
    pub fn alltoall64(&self, mine: &[u64]) -> Vec<u64> {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        assert_eq!(mine.len(), p);
        let t = coll_tag(collop::ALLTOALL, 0, seq);
        for (dst, &v) in mine.iter().enumerate() {
            if dst != me {
                self.coll_send(dst, t, Bytes::copy_from_slice(&v.to_le_bytes()));
            }
        }
        (0..p)
            .map(|src| {
                if src == me {
                    mine[me]
                } else {
                    let b = self.coll_recv(src, t);
                    u64::from_le_bytes(b[..8].try_into().unwrap())
                }
            })
            .collect()
    }
}

fn split_header(payload: &Bytes) -> (u64, &[u8]) {
    let header = u64::from_le_bytes(payload[..8].try_into().unwrap());
    (header, &payload[8..])
}

impl std::fmt::Debug for RawShmem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawShmem(pe {}/{})", self.rank(), self.nranks())
    }
}
