//! HiPER OpenSHMEM module (paper §II-C2) plus the underlying SHMEM library.
//!
//! Layers, mirroring the paper's stack:
//!
//! * [`SymHeap`] / [`ShmemWorld`] — the symmetric heaps, shared across the
//!   simulated cluster so one-sided operations are true direct memory
//!   accesses (the RDMA model).
//! * [`RawShmem`] — the SHMEM library itself (the role Cray SHMEM plays):
//!   blocking put/get/atomics, `quiet`, `wait_until`, `barrier_all`,
//!   reductions and the ISx count exchange. Blocking calls park the calling
//!   OS thread.
//! * [`ShmemModule`] — the pluggable HiPER module ("AsyncSHMEM"): taskified
//!   standard APIs safe for multithreaded use, plus the paper's novel
//!   future-returning extensions, most notably
//!   [`ShmemModule::async_when`] (`shmem_async_when`).

mod heap;
mod module;
mod raw;

pub use heap::{SymHeap, SymPtr};
pub use module::ShmemModule;
pub use raw::{Cmp, RawShmem, ShmemWorld};
