//! SPMD tests for the UPC++ module.

use std::sync::Arc;

use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_upcxx::{UpcxxBarrier, UpcxxModule, UpcxxReduce, UpcxxWorld};

struct Ctx {
    upcxx: Arc<UpcxxModule>,
    barrier: UpcxxBarrier,
    reduce: UpcxxReduce,
}

fn with_upcxx<R: Send + 'static>(
    n: usize,
    main: impl Fn(hiper_netsim::RankEnv, Ctx) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let world = UpcxxWorld::new(n, 1 << 20);
    let barrier = UpcxxBarrier::new();
    let reduce = UpcxxReduce::new();
    SpmdBuilder::new(n)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            move |_rank, transport| {
                let upcxx = UpcxxModule::new(world.clone(), transport);
                (
                    vec![Arc::clone(&upcxx) as Arc<dyn SchedulerModule>],
                    Ctx {
                        upcxx,
                        barrier: barrier.clone(),
                        reduce: reduce.clone(),
                    },
                )
            },
            main,
        )
}

#[test]
fn rput_rget_roundtrip() {
    let results = with_upcxx(2, |env, ctx| {
        let u = &ctx.upcxx;
        let mine = u.alloc(64);
        u.local_with_mut(mine, |bytes| bytes.fill(env.rank as u8 + 1));
        u.barrier(&ctx.barrier);
        // Learn the peer's pointer (deterministic allocation order: same
        // offset on every rank).
        let peer = 1 - env.rank;
        let remote = hiper_upcxx::GlobalPtr {
            rank: peer,
            offset: mine.offset,
            len: 64,
        };
        // rget the peer's data.
        let data = u.rget(remote).get();
        assert!(data.iter().all(|&b| b == peer as u8 + 1));
        // rput our marker into the peer's second half.
        u.rput(&[9u8; 16], remote.slice(48, 16)).wait();
        u.barrier(&ctx.barrier);
        u.local_with(mine, |bytes| (bytes[0], bytes[63]))
    });
    for (r, (first, last)) in results.iter().enumerate() {
        assert_eq!(*first, r as u8 + 1);
        assert_eq!(*last, 9);
    }
}

#[test]
fn rpc_executes_remotely_and_returns() {
    let results = with_upcxx(3, |env, ctx| {
        let u = &ctx.upcxx;
        let target = (env.rank + 1) % env.nranks;
        let fut = u.rpc(target, move || target * 100);
        fut.get()
    });
    assert_eq!(results, vec![100, 200, 0]);
}

#[test]
fn rpc_composes_with_tasks() {
    let results = with_upcxx(2, |env, ctx| {
        let u = &ctx.upcxx;
        let fut = u.rpc(1 - env.rank, || 21u64);
        let fut2 = fut.clone();
        let doubled = hiper_runtime::api::async_future_await(&fut, move || fut2.get() * 2);
        doubled.get()
    });
    assert_eq!(results, vec![42, 42]);
}

#[test]
fn barrier_synchronizes_ranks() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    let results = with_upcxx(4, move |env, ctx| {
        std::thread::sleep(std::time::Duration::from_millis(env.rank as u64 * 8));
        c.fetch_add(1, Ordering::SeqCst);
        ctx.upcxx.barrier(&ctx.barrier);
        c.load(Ordering::SeqCst)
    });
    assert!(results.iter().all(|&r| r == 4), "{:?}", results);
}

#[test]
fn allreduce_sums_across_ranks() {
    let results = with_upcxx(4, |env, ctx| {
        let vals = vec![env.rank as f64, 1.0];
        let fut = ctx.upcxx.allreduce_sum_f64(&ctx.reduce, &vals);
        fut.get()
    });
    for r in results {
        assert_eq!(r, vec![6.0, 4.0]);
    }
}

#[test]
fn rget_f64_typed() {
    let results = with_upcxx(2, |env, ctx| {
        let u = &ctx.upcxx;
        let mine = u.alloc(4 * 8);
        u.local_with_mut(mine, |bytes| {
            for i in 0..4 {
                bytes[i * 8..i * 8 + 8]
                    .copy_from_slice(&(env.rank as f64 + i as f64).to_le_bytes());
            }
        });
        u.barrier(&ctx.barrier);
        let peer = 1 - env.rank;
        let remote = hiper_upcxx::GlobalPtr {
            rank: peer,
            offset: mine.offset,
            len: 4 * 8,
        };
        ctx.upcxx.rget_f64(remote).get()
    });
    assert_eq!(results[0], vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0]);
}

#[test]
fn many_overlapping_rputs() {
    let results = with_upcxx(2, |env, ctx| {
        let u = &ctx.upcxx;
        let mine = u.alloc(8 * 100);
        u.barrier(&ctx.barrier);
        let peer = 1 - env.rank;
        let remote = hiper_upcxx::GlobalPtr {
            rank: peer,
            offset: mine.offset,
            len: 8 * 100,
        };
        // 100 overlapping one-sided writes; wait on all futures.
        let futs: Vec<_> = (0..100)
            .map(|i| u.rput(&(i as u64).to_le_bytes(), remote.slice(i * 8, 8)))
            .collect();
        for f in &futs {
            f.wait();
        }
        u.barrier(&ctx.barrier);
        u.local_with(mine, |bytes| {
            (0..100).all(|i| {
                u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()) == i as u64
            })
        })
    });
    assert!(results.into_iter().all(|ok| ok));
}
