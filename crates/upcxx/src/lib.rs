//! HiPER UPC++ module (paper §II-C; used by the HPGMG-FV benchmark).
//!
//! UPC++ is natively future-based, which makes it the most direct fit for
//! HiPER's composition model: one-sided `rput`/`rget` return futures, and
//! `rpc` ships a function to execute at a remote rank, returning a future on
//! its result. This module implements that surface over the simulated
//! cluster:
//!
//! * [`GlobalPtr`] — a (rank, offset) pointer into a rank's shared segment.
//! * [`UpcxxModule::rput`] / [`UpcxxModule::rget`] — one-sided transfers
//!   executed directly against the target segment by the delivery engine
//!   (the RDMA model), with acknowledged completion futures.
//! * [`UpcxxModule::rpc`] — remote procedure calls. Because the simulated
//!   cluster is one process, closures cross rank boundaries without
//!   serialization (a real UPC++ would marshal arguments; the scheduling
//!   behaviour — remote execution as a task on the target's runtime, reply
//!   after a network delay — is what matters here and is preserved).
//! * `barrier` / `allreduce_f64` — collectives built on `rpc`.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use hiper_netsim::{Channel, Message, Rank, Transport};
use hiper_platform::{PlaceId, PlaceKind};
use hiper_runtime::{Future, ModuleError, Promise, Runtime, SchedulerModule};
use parking_lot::{Mutex, RwLock};

mod op {
    pub const PUT: u8 = 1;
    pub const PUT_ACK: u8 = 2;
    pub const GET_REQ: u8 = 3;
    pub const GET_REP: u8 = 4;
    pub const RPC_REQ: u8 = 5;
    pub const RPC_REP: u8 = 6;
}

fn tag(opcode: u8, low: u64) -> u64 {
    ((opcode as u64) << 56) | (low & 0xFF_FFFF_FFFF_FFFF)
}

/// A pointer into `rank`'s shared segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalPtr {
    /// Owning rank.
    pub rank: Rank,
    /// Byte offset within the owner's segment.
    pub offset: usize,
    /// Allocation length in bytes.
    pub len: usize,
}

impl GlobalPtr {
    /// Byte-granular sub-range.
    pub fn slice(&self, from: usize, len: usize) -> GlobalPtr {
        assert!(from + len <= self.len, "global_ptr slice out of range");
        GlobalPtr {
            rank: self.rank,
            offset: self.offset + from,
            len,
        }
    }
}

type RpcClosure = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;
type RpcCallback = Box<dyn FnOnce(Box<dyn Any + Send>) + Send>;
/// Staged RPC results keyed by (caller, slot).
type RpcResults = HashMap<(Rank, u64), Box<dyn Any + Send>>;

/// Cluster-shared state: segments plus in-process RPC staging tables.
#[derive(Clone)]
pub struct UpcxxWorld {
    segments: Arc<Vec<RwLock<Vec<u8>>>>,
    /// Outgoing rpc closures staged by (caller, slot); slot ids are unique
    /// per caller, so the pair is globally unique.
    closures: Arc<Mutex<HashMap<(Rank, u64), RpcClosure>>>,
    /// Rpc results staged for (caller, slot).
    results: Arc<Mutex<RpcResults>>,
}

impl UpcxxWorld {
    /// Allocates `nranks` shared segments of `segment_bytes` each.
    pub fn new(nranks: usize, segment_bytes: usize) -> UpcxxWorld {
        UpcxxWorld {
            segments: Arc::new(
                (0..nranks)
                    .map(|_| RwLock::new(vec![0u8; segment_bytes]))
                    .collect(),
            ),
            closures: Arc::new(Mutex::new(HashMap::new())),
            results: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.segments.len()
    }
}

struct ModuleState {
    rt: Runtime,
    interconnect: PlaceId,
}

/// One rank's UPC++ endpoint.
pub struct UpcxxModule {
    world: UpcxxWorld,
    transport: Transport,
    alloc_next: Mutex<usize>,
    next_slot: AtomicU64,
    pending: Mutex<HashMap<u64, RpcCallback>>,
    state: RwLock<Option<ModuleState>>,
    /// First wire-protocol violation seen by the delivery handler
    /// (truncated frame, unknown opcode, rpc state desync). The frame is
    /// dropped, not panicked on; surfaces via [`health`](UpcxxModule::health).
    wire_error: Mutex<Option<ModuleError>>,
}

impl UpcxxModule {
    /// Creates the endpoint and registers its delivery handler.
    pub fn new(world: UpcxxWorld, transport: Transport) -> Arc<UpcxxModule> {
        assert_eq!(world.nranks(), transport.nranks());
        let module = Arc::new(UpcxxModule {
            world,
            transport: transport.clone(),
            alloc_next: Mutex::new(0),
            next_slot: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            state: RwLock::new(None),
            wire_error: Mutex::new(None),
        });
        let m2 = Arc::clone(&module);
        transport.register_handler(Channel::UPCXX, Box::new(move |m| m2.on_message(m)));
        module
    }

    /// This rank (`upcxx::rank_me`).
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Cluster size (`upcxx::rank_n`).
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// Allocates `nbytes` in this rank's shared segment
    /// (`upcxx::new_array`-style; 16-byte aligned).
    pub fn alloc(&self, nbytes: usize) -> GlobalPtr {
        let mut next = self.alloc_next.lock();
        let offset = (*next + 15) & !15;
        let seg_len = self.world.segments[self.rank()].read().len();
        assert!(offset + nbytes <= seg_len, "shared segment exhausted");
        *next = offset + nbytes;
        GlobalPtr {
            rank: self.rank(),
            offset,
            len: nbytes,
        }
    }

    /// Local access to a `GlobalPtr` owned by this rank (`local()`).
    pub fn local_with<R>(&self, ptr: GlobalPtr, f: impl FnOnce(&[u8]) -> R) -> R {
        assert_eq!(ptr.rank, self.rank(), "local access to remote pointer");
        let seg = self.world.segments[ptr.rank].read();
        f(&seg[ptr.offset..ptr.offset + ptr.len])
    }

    /// Local mutation of an owned `GlobalPtr`.
    pub fn local_with_mut<R>(&self, ptr: GlobalPtr, f: impl FnOnce(&mut [u8]) -> R) -> R {
        assert_eq!(ptr.rank, self.rank(), "local access to remote pointer");
        let mut seg = self.world.segments[ptr.rank].write();
        f(&mut seg[ptr.offset..ptr.offset + ptr.len])
    }

    fn with_state<R>(&self, f: impl FnOnce(&ModuleState) -> R) -> R {
        let guard = self.state.read();
        let state = guard
            .as_ref()
            .expect("UPC++ module used before runtime initialization");
        f(state)
    }

    fn new_slot(&self, cb: RpcCallback) -> u64 {
        let id = self.next_slot.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().insert(id, cb);
        id
    }

    /// Records a wire-protocol violation (first one wins) instead of
    /// panicking the delivery-engine thread; the offending frame is dropped.
    fn wire_fault(&self, detail: String) {
        let mut slot = self.wire_error.lock();
        if slot.is_none() {
            *slot = Some(ModuleError::protocol("upcxx", detail));
        }
    }

    /// Endpoint health: `Err` once the delivery handler has dropped a
    /// malformed wire frame or hit an rpc-state desync.
    pub fn health(&self) -> Result<(), ModuleError> {
        match self.wire_error.lock().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn on_message(&self, msg: Message) {
        let opcode = (msg.tag >> 56) as u8;
        let low = msg.tag & 0xFF_FFFF_FFFF_FFFF;
        // Validate frame length before parsing: a truncated header must
        // drop the frame with a typed error, not panic the engine thread.
        let need = match opcode {
            op::PUT => 8,
            op::GET_REQ => 16,
            _ => 0,
        };
        if msg.payload.len() < need {
            self.wire_fault(format!(
                "opcode {} frame from rank {} is {} bytes, need {}",
                opcode,
                msg.src,
                msg.payload.len(),
                need
            ));
            return;
        }
        match opcode {
            op::PUT => {
                let offset = u64::from_le_bytes(msg.payload[..8].try_into().unwrap()) as usize;
                let data = &msg.payload[8..];
                self.world.segments[self.rank()].write()[offset..offset + data.len()]
                    .copy_from_slice(data);
                self.transport
                    .send(msg.src, Channel::UPCXX, tag(op::PUT_ACK, low), Bytes::new());
            }
            op::GET_REQ => {
                let offset = u64::from_le_bytes(msg.payload[..8].try_into().unwrap()) as usize;
                let nbytes = u64::from_le_bytes(msg.payload[8..16].try_into().unwrap()) as usize;
                let data = {
                    let seg = self.world.segments[self.rank()].read();
                    Bytes::copy_from_slice(&seg[offset..offset + nbytes])
                };
                self.transport
                    .send(msg.src, Channel::UPCXX, tag(op::GET_REP, low), data);
            }
            op::RPC_REQ => {
                // Execute the staged closure as a task on this rank's
                // runtime (unified scheduling), then reply.
                let key = (msg.src, low);
                let closure = match self.world.closures.lock().remove(&key) {
                    Some(c) => c,
                    None => {
                        self.wire_fault(format!(
                            "rpc request from rank {} slot {} has no staged closure",
                            msg.src, low
                        ));
                        return;
                    }
                };
                let world = self.world.clone();
                let transport = self.transport.clone();
                let caller = msg.src;
                let me = self.rank();
                self.with_state(|state| {
                    state.rt.spawn_at_yield(state.interconnect, move || {
                        let result = closure();
                        world.results.lock().insert((caller, low), result);
                        transport.send(caller, Channel::UPCXX, tag(op::RPC_REP, low), Bytes::new());
                        let _ = me;
                    });
                });
            }
            op::PUT_ACK | op::GET_REP | op::RPC_REP => {
                let cb = self.pending.lock().remove(&low);
                if let Some(cb) = cb {
                    match opcode {
                        op::GET_REP => cb(Box::new(msg.payload)),
                        op::RPC_REP => {
                            match self.world.results.lock().remove(&(self.rank(), low)) {
                                Some(result) => cb(result),
                                None => self.wire_fault(format!(
                                    "rpc reply from rank {} slot {} has no staged result",
                                    msg.src, low
                                )),
                            }
                        }
                        _ => cb(Box::new(())),
                    }
                }
            }
            other => self.wire_fault(format!("unknown opcode {} from rank {}", other, msg.src)),
        }
    }

    // ------------------------------------------------------------------
    // One-sided operations
    // ------------------------------------------------------------------

    /// `upcxx::rput`: writes `data` at `dst`; the future is satisfied at
    /// operation completion (target-side visibility).
    pub fn rput(&self, data: &[u8], dst: GlobalPtr) -> Future<()> {
        assert!(data.len() <= dst.len, "rput larger than destination");
        let promise = Promise::new();
        let fut = promise.future();
        if dst.rank == self.rank() {
            self.world.segments[dst.rank].write()[dst.offset..dst.offset + data.len()]
                .copy_from_slice(data);
            promise.put(());
            return fut;
        }
        let mut slot_promise = Some(promise);
        let id = self.new_slot(Box::new(move |_| {
            slot_promise.take().expect("ack twice").put(());
        }));
        let mut payload = BytesMut::with_capacity(8 + data.len());
        payload.put_u64_le(dst.offset as u64);
        payload.put_slice(data);
        self.transport
            .send(dst.rank, Channel::UPCXX, tag(op::PUT, id), payload.freeze());
        fut
    }

    /// Typed `rput` of f64 values.
    pub fn rput_f64(&self, data: &[f64], dst: GlobalPtr) -> Future<()> {
        self.rput(&hiper_netsim::pod::to_bytes(data), dst)
    }

    /// `upcxx::rget`: fetches `src.len` bytes; future carries the data.
    pub fn rget(&self, src: GlobalPtr) -> Future<Bytes> {
        let promise = Promise::new();
        let fut = promise.future();
        if src.rank == self.rank() {
            let seg = self.world.segments[src.rank].read();
            promise.put(Bytes::copy_from_slice(
                &seg[src.offset..src.offset + src.len],
            ));
            return fut;
        }
        let mut slot_promise = Some(promise);
        let id = self.new_slot(Box::new(move |result| {
            let data = *result.downcast::<Bytes>().expect("rget reply type");
            slot_promise.take().expect("reply twice").put(data);
        }));
        let mut payload = BytesMut::with_capacity(16);
        payload.put_u64_le(src.offset as u64);
        payload.put_u64_le(src.len as u64);
        self.transport.send(
            src.rank,
            Channel::UPCXX,
            tag(op::GET_REQ, id),
            payload.freeze(),
        );
        fut
    }

    /// Typed `rget` of f64 values.
    pub fn rget_f64(&self, src: GlobalPtr) -> Future<Vec<f64>> {
        let raw = self.rget(src);
        let promise = Promise::new();
        let fut = promise.future();
        let mut slot = Some(promise);
        let raw2 = raw.clone();
        raw.on_ready(move || {
            let data = raw2.try_get().expect("ready future lost its value");
            slot.take()
                .expect("reply twice")
                .put(hiper_netsim::pod::from_bytes(&data));
        });
        fut
    }

    /// `upcxx::rpc`: executes `f` at `target` as a task on the target's
    /// runtime; returns a future on its result.
    pub fn rpc<R: Send + 'static>(
        &self,
        target: Rank,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> Future<R> {
        let promise = Promise::new();
        let fut = promise.future();
        let mut slot_promise = Some(promise);
        let id = self.new_slot(Box::new(move |result| {
            let value = *result.downcast::<R>().expect("rpc result type mismatch");
            slot_promise.take().expect("reply twice").put(value);
        }));
        self.world.closures.lock().insert(
            (self.rank(), id),
            Box::new(move || Box::new(f()) as Box<dyn Any + Send>),
        );
        self.transport
            .send(target, Channel::UPCXX, tag(op::RPC_REQ, id), Bytes::new());
        fut
    }

    // ------------------------------------------------------------------
    // Collectives (built on rpc)
    // ------------------------------------------------------------------

    /// `upcxx::barrier()` (blocking; help-first on workers).
    pub fn barrier(&self, shared: &UpcxxBarrier) {
        self.barrier_async(shared).wait();
    }

    /// Future-returning barrier.
    pub fn barrier_async(&self, shared: &UpcxxBarrier) -> Future<()> {
        let promise = Promise::new();
        let fut = promise.future();
        let n = self.nranks();
        let state = shared.state.clone();
        // Arrival executes at rank 0 (after a network delay, via rpc).
        let arrive = move || {
            let mut st = state.lock();
            st.waiting.push(promise);
            if st.waiting.len() == n {
                for p in st.waiting.drain(..) {
                    p.put(());
                }
            }
        };
        // Every rank (including 0) routes its arrival through rpc, so each
        // arrival pays a network delay and runs as a task at rank 0.
        let _ = self.rpc(0, arrive);
        fut
    }

    /// Elementwise f64 sum-allreduce (rpc contributions to rank 0, results
    /// pushed back through the shared promise table).
    pub fn allreduce_sum_f64(&self, shared: &UpcxxReduce, vals: &[f64]) -> Future<Vec<f64>> {
        let promise = Promise::new();
        let fut = promise.future();
        let n = self.nranks();
        let state = shared.state.clone();
        let mine = vals.to_vec();
        let contribute = move || {
            let mut st = state.lock();
            match &mut st.acc {
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(&mine) {
                        *a += b;
                    }
                }
                None => st.acc = Some(mine.clone()),
            }
            st.waiting.push(promise);
            if st.waiting.len() == n {
                let result = st.acc.take().expect("reduction accumulator missing");
                for p in st.waiting.drain(..) {
                    p.put(result.clone());
                }
            }
        };
        let _ = self.rpc(0, contribute);
        fut
    }
}

/// Shared state for [`UpcxxModule::barrier`]; create once per cluster and
/// clone into every rank (like [`UpcxxWorld`]).
#[derive(Clone, Default)]
pub struct UpcxxBarrier {
    state: Arc<Mutex<BarrierState>>,
}

#[derive(Default)]
struct BarrierState {
    waiting: Vec<Promise<()>>,
}

impl UpcxxBarrier {
    /// Creates the shared barrier state.
    pub fn new() -> UpcxxBarrier {
        UpcxxBarrier::default()
    }
}

/// Shared state for [`UpcxxModule::allreduce_sum_f64`]. One reduction may be
/// in flight at a time per instance.
#[derive(Clone, Default)]
pub struct UpcxxReduce {
    state: Arc<Mutex<ReduceState>>,
}

#[derive(Default)]
struct ReduceState {
    acc: Option<Vec<f64>>,
    waiting: Vec<Promise<Vec<f64>>>,
}

impl UpcxxReduce {
    /// Creates the shared reduction state.
    pub fn new() -> UpcxxReduce {
        UpcxxReduce::default()
    }
}

impl SchedulerModule for UpcxxModule {
    fn name(&self) -> &'static str {
        "upcxx"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        let interconnect = rt.place_of_kind(&PlaceKind::Interconnect).ok_or_else(|| {
            ModuleError::new("upcxx", "platform model contains no Interconnect place")
        })?;
        *self.state.write() = Some(ModuleState {
            rt: rt.clone(),
            interconnect,
        });
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        *self.state.write() = None;
    }
}

impl std::fmt::Debug for UpcxxModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UpcxxModule(rank {}/{})", self.rank(), self.nranks())
    }
}
