//! Ablation: pop/steal path policies (paper §II-B3).
//!
//! The same task storm — spawns scattered across the places of the Figure 2
//! platform model — scheduled under each built-in path policy. Paths are
//! pure data, so this isolates the cost/benefit of place-search order.

use criterion::{criterion_group, criterion_main, Criterion};
use hiper_platform::{autogen, PathPolicy, PlatformConfig};
use hiper_runtime::{api, Runtime};

fn platform_with(policy: PathPolicy) -> PlatformConfig {
    let mut cfg = autogen::figure2(2); // 4 workers, 7 places
    cfg.pop_policy = PathPolicy::HomeFirst;
    cfg.steal_policy = policy;
    cfg
}

fn storm(rt: &Runtime) {
    let places: Vec<_> = rt.config().graph.places().iter().map(|p| p.id).collect();
    let rt2 = rt.clone();
    rt.block_on(move || {
        api::finish(|| {
            for i in 0..2000 {
                let place = places[i % places.len()];
                rt2.spawn_at(place, move || {
                    std::hint::black_box((0..50u64).sum::<u64>());
                });
            }
        })
        .expect("no task panicked");
    });
}

fn bench_policies(c: &mut Criterion) {
    for policy in [
        PathPolicy::HomeFirst,
        PathPolicy::Hierarchical,
        PathPolicy::RandomizedHomeFirst,
    ] {
        let rt = Runtime::new(platform_with(policy));
        c.bench_function(&format!("steal_policy_{}", policy.as_str()), |b| {
            b.iter(|| storm(&rt))
        });
        rt.shutdown();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_policies
}
criterion_main!(benches);
