//! Ablation: help-first blocking vs continuation-style composition
//! (DESIGN.md §2.1).
//!
//! The same dependency chain expressed two ways: (a) blocking — each stage
//! `wait()`s on the previous future from inside a task (help-first keeps
//! the core busy, but each wait costs a scheduler interaction), and (b)
//! continuation-passing — `async_future_await` chains, never blocking.
//! This quantifies the overhead the paper avoids by emphasizing
//! future-based APIs.

use criterion::{criterion_group, criterion_main, Criterion};
use hiper_platform::autogen;
use hiper_runtime::{api, Promise, Runtime};

const CHAIN: usize = 200;

fn bench_blocking_vs_continuation(c: &mut Criterion) {
    let rt = Runtime::new(autogen::smp(2));

    let rt2 = rt.clone();
    c.bench_function("chain_200_blocking_waits", |b| {
        b.iter(|| {
            rt2.block_on(|| {
                let p = Promise::new();
                let mut fut = p.future();
                p.put(0u64);
                for _ in 0..CHAIN {
                    let prev = fut.clone();
                    // Each stage is a task that *blocks* on its input.
                    fut = api::async_future(move || {
                        prev.wait();
                        prev.get() + 1
                    });
                }
                fut.get()
            })
        })
    });

    let rt2 = rt.clone();
    c.bench_function("chain_200_continuations", |b| {
        b.iter(|| {
            rt2.block_on(|| {
                let p = Promise::new();
                let mut fut = p.future();
                p.put(0u64);
                for _ in 0..CHAIN {
                    let prev = fut.clone();
                    let prev2 = prev.clone();
                    // Each stage is predicated on its input: no blocking.
                    fut = api::async_future_await(&prev, move || prev2.get() + 1);
                }
                fut.get()
            })
        })
    });

    rt.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_blocking_vs_continuation
}
criterion_main!(benches);
