//! Microbenchmarks of the communication substrates: MPI point-to-point
//! latency/bandwidth and SHMEM one-sided operation latencies over the
//! simulated interconnect.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hiper_mpi::RawComm;
use hiper_netsim::{Cluster, NetConfig};
use hiper_shmem::{RawShmem, ShmemWorld};

struct MpiPair {
    cluster: Cluster,
    a: Arc<RawComm>,
    echo: Option<std::thread::JoinHandle<()>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl MpiPair {
    fn new() -> MpiPair {
        let cluster = Cluster::start(2, NetConfig::default());
        let a = RawComm::new(cluster.transport(0));
        let b = RawComm::new(cluster.transport(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Echo server on rank 1: bounce every message back with tag+1.
        let echo = std::thread::spawn(move || loop {
            let req = b.irecv(Some(0), None);
            loop {
                if req.test() {
                    break;
                }
                if stop2.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                std::thread::yield_now();
            }
            let status = req.wait();
            if status.tag == u64::MAX - 1 {
                return; // shutdown message
            }
            b.send(0, status.tag + 1, status.data);
        });
        MpiPair {
            cluster,
            a,
            echo: Some(echo),
            stop,
        }
    }
}

impl Drop for MpiPair {
    fn drop(&mut self) {
        self.a.send(1, u64::MAX - 1, bytes::Bytes::new());
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.echo.take() {
            let _ = h.join();
        }
        self.cluster.stop();
    }
}

fn bench_mpi(c: &mut Criterion) {
    let pair = MpiPair::new();
    c.bench_function("mpi_pingpong_8B", |b| {
        let mut tag = 0u64;
        b.iter(|| {
            pair.a.send(1, tag, bytes::Bytes::from_static(&[0u8; 8]));
            let st = pair.a.recv(Some(1), Some(tag + 1));
            tag += 2;
            st.data.len()
        })
    });
    c.bench_function("mpi_pingpong_64KB", |b| {
        let payload = bytes::Bytes::from(vec![0u8; 64 << 10]);
        let mut tag = 1u64 << 32;
        b.iter(|| {
            pair.a.send(1, tag, payload.clone());
            let st = pair.a.recv(Some(1), Some(tag + 1));
            tag += 2;
            st.data.len()
        })
    });
    drop(pair);
}

fn bench_shmem(c: &mut Criterion) {
    let cluster = Cluster::start(2, NetConfig::default());
    let world = ShmemWorld::new(2, 1 << 22);
    let a = RawShmem::new(world.clone(), cluster.transport(0));
    let _b = RawShmem::new(world, cluster.transport(1));
    let buf = a.malloc64(1 << 16);

    c.bench_function("shmem_put8_quiet", |b| {
        b.iter(|| {
            a.put64(1, buf.offset, &[42]);
            a.quiet();
        })
    });
    c.bench_function("shmem_put_64KB_quiet", |b| {
        let data = vec![7u64; 8 << 10];
        b.iter(|| {
            a.put64(1, buf.offset, &data);
            a.quiet();
        })
    });
    c.bench_function("shmem_get8", |b| b.iter(|| a.get(1, buf.offset, 8)));
    c.bench_function("shmem_fadd", |b| b.iter(|| a.fadd(1, buf.offset, 1)));
    cluster.stop();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mpi, bench_shmem
}
criterion_main!(benches);
