//! Component-level microbenchmarks of the runtime core: task spawn/execute
//! throughput, finish-scope cost, promise/future latency, forasync, and the
//! raw work-stealing deque.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hiper_platform::autogen;
use hiper_runtime::{api, Promise, Runtime};

fn bench_spawn_finish(c: &mut Criterion) {
    let rt = Runtime::new(autogen::smp(2));
    let rt2 = rt.clone();
    c.bench_function("finish_1000_empty_tasks", |b| {
        b.iter(|| {
            rt2.block_on(|| {
                api::finish(|| {
                    for _ in 0..1000 {
                        api::async_(|| {});
                    }
                })
                .expect("no task panicked");
            })
        })
    });
    rt.shutdown();
}

fn bench_promise_roundtrip(c: &mut Criterion) {
    let rt = Runtime::new(autogen::smp(2));
    let rt2 = rt.clone();
    c.bench_function("promise_put_get_chain_100", |b| {
        b.iter(|| {
            rt2.block_on(|| {
                let mut fut = {
                    let p = Promise::new();
                    let f = p.future();
                    p.put(0u64);
                    f
                };
                for _ in 0..100 {
                    fut = api::async_future_await(&fut, || 1u64);
                }
                fut.get()
            })
        })
    });
    rt.shutdown();
}

fn bench_forasync(c: &mut Criterion) {
    let rt = Runtime::new(autogen::smp(2));
    let rt2 = rt.clone();
    c.bench_function("forasync_100k_grain_512", |b| {
        b.iter(|| {
            let acc = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&acc);
            rt2.block_on(move || {
                api::forasync_1d(100_000, 512, move |i| {
                    a.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            acc.load(Ordering::Relaxed)
        })
    });
    rt.shutdown();
}

/// Spawn-heavy producer/consumer fan-out: a handful of producer tasks each
/// spawn a stream of tiny consumer tasks. This hammers the spawn-side wake
/// path (workers oscillate between idle and busy, so every spawn decides
/// whether and whom to wake) and the steal path (consumers are distributed
/// by stealing).
fn bench_spawn_fanout(c: &mut Criterion) {
    let rt = Runtime::new(autogen::smp(4));
    let rt2 = rt.clone();
    c.bench_function("fanout_8x1000_producer_consumer", |b| {
        b.iter(|| {
            let acc = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&acc);
            rt2.block_on(move || {
                api::finish(|| {
                    for _ in 0..8 {
                        let a = Arc::clone(&a);
                        api::async_(move || {
                            for _ in 0..1000 {
                                let a = Arc::clone(&a);
                                api::async_(move || {
                                    a.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
                .expect("no task panicked");
            });
            acc.load(Ordering::Relaxed)
        })
    });
    rt.shutdown();
}

fn bench_deque(c: &mut Criterion) {
    c.bench_function("deque_push_pop_1000", |b| {
        let (w, _s) = hiper_deque::new_deque();
        b.iter(|| {
            for i in 0..1000u64 {
                w.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = w.pop() {
                sum += v;
            }
            sum
        })
    });
    c.bench_function("deque_steal_1000", |b| {
        let (w, s) = hiper_deque::new_deque();
        b.iter(|| {
            for i in 0..1000u64 {
                w.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = s.steal().success() {
                sum += v;
            }
            sum
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_spawn_finish, bench_promise_roundtrip, bench_forasync, bench_spawn_fanout, bench_deque
}
criterion_main!(benches);
