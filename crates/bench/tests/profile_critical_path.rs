//! End-to-end check of the post-mortem profiler: trace a real workload with
//! a known longest spawn chain, analyze the live drain, then roundtrip the
//! trace through the Chrome JSON file format (the `profile` binary's input
//! path) and analyze again.
//!
//! The acceptance bar: the reported critical path must be at least the
//! longest chain's compute time, and its segments must sum to the path
//! total within 5% (they tile the interval, so they in fact sum exactly —
//! the 5% bound is the contract).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hiper_platform::autogen;
use hiper_runtime::{api, Runtime};
use hiper_trace::analysis::ProfileAnalysis;

const DEPTH: usize = 16;
const SPIN: Duration = Duration::from_micros(300);

fn busy_spin(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// A sequential spawn chain: each task computes for `SPIN` then spawns the
/// next. The chain IS the critical path — nothing can overlap it.
fn spawn_chain(depth: usize, done: Arc<AtomicU64>) {
    busy_spin(SPIN);
    done.fetch_add(1, Ordering::Relaxed);
    if depth > 1 {
        api::async_(move || spawn_chain(depth - 1, done));
    }
}

fn assert_path_invariants(analysis: &ProfileAnalysis, wall_ns: u64, label: &str) {
    let cp = analysis
        .critical_path
        .as_ref()
        .unwrap_or_else(|| panic!("{}: no critical path found", label));
    assert!(
        cp.chain.len() >= DEPTH,
        "{}: chain has {} tasks, expected the full {}-deep spawn chain",
        label,
        cp.chain.len(),
        DEPTH
    );
    // The chain's wall time must cover at least its serial compute.
    let chain_compute_ns = DEPTH as u64 * SPIN.as_nanos() as u64;
    assert!(
        cp.total_ns >= chain_compute_ns,
        "{}: critical path {} ns shorter than the chain's serial compute {} ns",
        label,
        cp.total_ns,
        chain_compute_ns
    );
    assert!(
        cp.total_ns <= wall_ns,
        "{}: critical path {} ns exceeds measured wall time {} ns",
        label,
        cp.total_ns,
        wall_ns
    );
    // Segments decompose the path: their durations sum to the total within
    // 5% (exactly, by construction).
    let seg_sum: u64 = cp.segments.iter().map(|s| s.dur_ns).sum();
    let diff = seg_sum.abs_diff(cp.total_ns) as f64;
    assert!(
        diff <= cp.total_ns as f64 * 0.05,
        "{}: segments sum to {} ns but the path is {} ns (>5% off)",
        label,
        seg_sum,
        cp.total_ns
    );
    // And so do the per-kind attributions.
    let kind_sum = cp.compute_ns + cp.module_ns + cp.pop_wait_ns + cp.steal_wait_ns;
    assert_eq!(
        kind_sum, seg_sum,
        "{}: per-kind totals disagree with the segment list",
        label
    );
    assert!(
        cp.compute_ns >= chain_compute_ns * 9 / 10,
        "{}: compute attribution {} ns misses the chain's {} ns of spinning",
        label,
        cp.compute_ns,
        chain_compute_ns
    );
}

#[test]
fn traced_chain_yields_consistent_critical_path_live_and_reloaded() {
    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);

    hiper_trace::set_enabled(true);
    let rt = Runtime::new(autogen::smp(2));
    let t0 = Instant::now();
    rt.block_on(move || {
        api::finish(move || {
            api::async_(move || spawn_chain(DEPTH, d));
        })
        .expect("no task panicked");
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    hiper_trace::set_enabled(false);
    let data = hiper_trace::drain();
    rt.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), DEPTH as u64);
    assert_eq!(
        data.dropped(),
        0,
        "rings wrapped; raise buffer for the test"
    );

    let live = ProfileAnalysis::build(&data);
    assert_path_invariants(&live, wall_ns, "live drain");

    // Roundtrip through the on-disk Chrome trace — the profile binary's
    // actual input path — and verify the analysis survives re-parsing.
    let json = hiper_trace::chrome::chrome_trace_json(&data);
    let path = std::env::temp_dir().join(format!("hiper_profile_test_{}.json", std::process::id()));
    std::fs::write(&path, &json).expect("write temp trace");
    let reloaded = hiper_bench::traceload::load_chrome_trace(&path).expect("reload trace");
    std::fs::remove_file(&path).ok();

    let replayed = ProfileAnalysis::build(&reloaded);
    assert_path_invariants(&replayed, wall_ns, "chrome roundtrip");

    // The reloaded path must match the live one (timestamps survive the
    // µs-with-ns-fraction rendering to within rounding).
    let a = live.critical_path.as_ref().unwrap();
    let b = replayed.critical_path.as_ref().unwrap();
    assert_eq!(a.chain, b.chain, "chain differs after roundtrip");
    let drift = a.total_ns.abs_diff(b.total_ns) as f64;
    assert!(
        drift <= a.total_ns as f64 * 0.01,
        "roundtrip drifted the path total: {} vs {} ns",
        a.total_ns,
        b.total_ns
    );
}
