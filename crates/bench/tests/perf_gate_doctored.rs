//! Proves the perf gate actually gates: the `perf_gate` binary must pass
//! against a baseline recorded from the same machine, and must fail (exit 1)
//! against a doctored baseline claiming the workloads used to be 1000x
//! faster — an injected regression.
//!
//! Runs the real binary via `CARGO_BIN_EXE_perf_gate`, so the flag parsing,
//! file IO, and exit codes are all under test, not just the compare logic
//! (which has its own unit tests in `perfgate`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use hiper_bench::perfgate::{
    compare, gate_json, is_regression, parse_gate_json, MetricSummary, DEFAULT_IQR_MULT,
    DEFAULT_SLACK_PCT,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hiper_gate_test_{}_{}", std::process::id(), name))
}

#[test]
fn binary_passes_on_real_baseline_and_fails_on_doctored_one() {
    let baseline = tmp("baseline.json");
    let doctored = tmp("doctored.json");
    let out = tmp("out.json");
    let bin = env!("CARGO_BIN_EXE_perf_gate");

    // 1. Record a baseline and gate against it in one go: must pass.
    let status = Command::new(bin)
        .args(["--baseline"])
        .arg(&baseline)
        .arg("--out")
        .arg(&out)
        .arg("--update-baseline")
        // Keep the test hermetic: no baseline-profile recording into the
        // default --trace-dir, no traced re-runs on failure.
        .env("HIPER_GATE_ATTRIBUTION", "0")
        .env("HIPER_REPS", "3")
        .status()
        .expect("run perf_gate");
    assert!(
        status.success(),
        "perf_gate regressed against its own freshly recorded baseline"
    );

    // 2. Doctor the baseline: claim everything used to run 1000x faster,
    //    with zero spread. Gate with the noise allowance off so the verdict
    //    depends only on the medians — a deterministic injected regression.
    let real = parse_gate_json(&std::fs::read_to_string(&baseline).expect("read baseline"))
        .expect("parse baseline");
    assert_eq!(
        real.len(),
        hiper_bench::perfgate::GATE_BENCHES.len(),
        "gate must cover every workload in GATE_BENCHES"
    );
    let fast: BTreeMap<String, MetricSummary> = real
        .iter()
        .map(|(k, s)| {
            (
                k.clone(),
                MetricSummary {
                    median: s.median / 1000.0,
                    iqr: 0.0,
                    reps: s.reps,
                },
            )
        })
        .collect();
    std::fs::write(&doctored, gate_json(&fast)).expect("write doctored baseline");

    let status = Command::new(bin)
        .arg("--baseline")
        .arg(&doctored)
        .arg("--out")
        .arg(&out)
        .env("HIPER_GATE_ATTRIBUTION", "0")
        .env("HIPER_REPS", "3")
        .env("HIPER_GATE_IQR_MULT", "0")
        .status()
        .expect("run perf_gate");
    assert_eq!(
        status.code(),
        Some(1),
        "perf_gate did not fail on a baseline 1000x faster than reality"
    );

    // 3. A missing baseline is a hard error (exit 2), never a silent pass.
    let gone = tmp("nonexistent.json");
    let status = Command::new(bin)
        .arg("--baseline")
        .arg(&gone)
        .arg("--out")
        .arg(&out)
        .env("HIPER_REPS", "1")
        .status()
        .expect("run perf_gate");
    assert_eq!(status.code(), Some(2));

    for p in [baseline, doctored, out] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn compare_logic_survives_the_baseline_file_format() {
    // Synthetic end-to-end through the JSON layer: a 100x slowdown must be
    // flagged even with default (generous) noise allowances.
    let mut base = BTreeMap::new();
    for name in ["fanout_ms", "pingpong_ms", "isx_ms"] {
        base.insert(
            name.to_string(),
            MetricSummary {
                median: 2.0,
                iqr: 0.2,
                reps: 7,
            },
        );
    }
    let base = parse_gate_json(&gate_json(&base)).unwrap();
    let slow: BTreeMap<String, MetricSummary> = base
        .iter()
        .map(|(k, s)| {
            (
                k.clone(),
                MetricSummary {
                    median: s.median * 100.0,
                    iqr: s.iqr,
                    reps: s.reps,
                },
            )
        })
        .collect();
    let checks = compare(&base, &slow, DEFAULT_SLACK_PCT, DEFAULT_IQR_MULT);
    assert!(
        checks.iter().all(|c| c.regressed),
        "100x slowdown slipped through"
    );
    let checks = compare(&base, &base, DEFAULT_SLACK_PCT, DEFAULT_IQR_MULT);
    assert!(checks.iter().all(|c| !c.regressed), "identical run flagged");
    assert!(!is_regression(
        &base["fanout_ms"],
        &base["fanout_ms"],
        DEFAULT_SLACK_PCT,
        DEFAULT_IQR_MULT
    ));
}
