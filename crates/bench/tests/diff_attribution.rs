//! End-to-end differential profiling (DESIGN.md §2.14):
//!
//! 1. A distributed (2-rank) ping-pong run exported to Chrome JSON and
//!    reloaded through `traceload` must diff against its live counterpart
//!    to exactly zero — timestamps, module spans, spawn edges, and rank
//!    pids (10+r) all survive the roundtrip, so the aligned DAGs match.
//! 2. With the netsim `slowmo` knob doubling the MPI channel's modeled
//!    latency, the differ must rank the `mpi` module as the top module
//!    contributor and report a positive wall/path delta — the acceptance
//!    self-test for automated regression attribution.
//!
//! Trace and metrics state are process-global, so everything runs inside
//! one `#[test]` in sequence.

use std::sync::Arc;

use hiper_bench::traceload::parse_chrome_trace;
use hiper_mpi::MpiModule;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_trace::chrome::chrome_trace_json;
use hiper_trace::diff::{DiffInput, DiffOptions, TraceDiff};
use hiper_trace::TraceData;

/// Ping-pong rounds per traced run. Long enough that doubling the modeled
/// MPI latency (~2 x 40us x ROUNDS of wire time) dwarfs SPMD
/// startup/teardown jitter in the wall-clock delta.
const ROUNDS: usize = 400;

/// One traced 2-rank ping-pong run, returning the drained trace.
fn traced_pingpong() -> TraceData {
    let _ = hiper_trace::drain(); // discard anything before the window
    hiper_trace::set_enabled(true);
    let done = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            move |env, mpi| {
                mpi.barrier();
                for _ in 0..ROUNDS {
                    if env.rank == 0 {
                        mpi.send::<u8>(1, 1, &[]);
                        let _ = mpi.recv::<u8>(Some(1), Some(2));
                    } else {
                        let _ = mpi.recv::<u8>(Some(0), Some(1));
                        mpi.send::<u8>(0, 2, &[]);
                    }
                }
                true
            },
        );
    hiper_trace::set_enabled(false);
    assert_eq!(done, vec![true, true]);
    hiper_trace::drain()
}

#[test]
fn chrome_roundtrip_self_diffs_to_zero_and_slowmo_is_attributed() {
    // Give the rings room: a traced ping-pong rep is tens of thousands of
    // events per worker. Parsed at first ring registration, so this must
    // run before any runtime exists in this process.
    std::env::set_var("HIPER_TRACE_BUF", "262144");

    // --- Phase 1: Chrome-JSON roundtrip of a distributed trace. ---
    let live = traced_pingpong();
    assert!(
        live.tracks.iter().any(|t| t.rank == Some(1)),
        "distributed run produces rank-tagged tracks"
    );
    assert_eq!(
        live.tracks.iter().map(|t| t.dropped).sum::<u64>(),
        0,
        "roundtrip test needs a lossless trace; raise HIPER_TRACE_BUF"
    );
    let reloaded = parse_chrome_trace(&chrome_trace_json(&live)).expect("reload Chrome JSON");
    let base = DiffInput::from_trace("pingpong", &live);
    let cand = DiffInput::from_trace("pingpong", &reloaded);
    assert!(!base.partial());
    assert!(base.dag.tasks > 0, "DAG recovered from the live trace");
    assert!(
        base.modules.keys().any(|k| k.starts_with("mpi")),
        "mpi module spans present: {:?}",
        base.modules.keys().collect::<Vec<_>>()
    );

    let diff = TraceDiff::build(&base, &cand, DiffOptions::default());
    assert_eq!(diff.wall_delta_ns, 0, "wall clock survives the roundtrip");
    assert_eq!(
        diff.path_delta_ns, 0,
        "critical path survives the roundtrip"
    );
    assert!(
        diff.ranked.is_empty(),
        "self-diff has no nonzero contributors: {:?}",
        diff.ranked
    );
    assert!(diff.alignment.exact, "task DAGs align exactly");
    assert!((diff.alignment.fraction - 1.0).abs() < 1e-12);
    assert!(diff.path_kinds.iter().all(|k| k.delta_ns == 0));
    assert!(diff.modules.iter().all(|m| m.delta_total_ns == 0));
    assert!(diff.workers.iter().all(|w| w.delta_ns == 0));

    // --- Phase 2: inject a deterministic 2x MPI-latency slowdown. ---
    hiper_netsim::slowmo::set_channel_scale(hiper_netsim::Channel::MPI, 2.0);
    let slowed = traced_pingpong();
    hiper_netsim::slowmo::reset();
    let slow = DiffInput::from_trace("pingpong-slow", &slowed);

    let diff = TraceDiff::build(&base, &slow, DiffOptions::default());
    assert!(
        diff.wall_delta_ns > 0,
        "doubled MPI latency slows the run: {} ns",
        diff.wall_delta_ns
    );
    assert!(diff.path_delta_ns > 0, "and lengthens the critical path");
    // The acceptance criterion: the doctored module op is ranked the top
    // module contributor.
    let top_module = diff
        .ranked
        .iter()
        .find(|c| c.category == "module")
        .expect("a module contributor is ranked");
    assert!(
        top_module.name.starts_with("mpi"),
        "doubled MPI latency attributed to the mpi module, got {:?} (ranked: {:?})",
        top_module.name,
        diff.ranked
            .iter()
            .map(|c| (c.category, c.name.clone(), c.delta_ns))
            .collect::<Vec<_>>()
    );
    assert!(top_module.delta_ns > 0, "the mpi module got slower");
    assert_eq!(
        diff.modules[0].name.split(':').next(),
        Some("mpi"),
        "module table ranks mpi first: {:?}",
        diff.modules
            .iter()
            .map(|m| (m.name.clone(), m.delta_total_ns))
            .collect::<Vec<_>>()
    );
    let md = diff.to_markdown();
    assert!(md.contains("Top contributors"));
    assert!(md.contains("mpi"));
}
