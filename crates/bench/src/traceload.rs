//! Re-parses a Chrome trace-event JSON file (as written by
//! [`hiper_trace::chrome`]) back into [`TraceData`], so the post-mortem
//! analyzer ([`hiper_trace::analysis`]) can run over traces from earlier
//! runs — the `profile` binary's input path.
//!
//! Lives here rather than in `hiper-trace` so the trace crate stays free of
//! the JSON parser (`hiper_platform::json`). The loader understands exactly
//! the event vocabulary the exporter emits; unknown `B`/`E` span names on
//! the runtime pid are treated as module spans (that is what they are on
//! export), and anything else unknown is skipped.

use std::collections::BTreeMap;
use std::path::Path;

use hiper_platform::json::Json;
use hiper_trace::chrome::{NETSIM_PID, RANK_PID_BASE};
use hiper_trace::{EventKind, TraceData, TraceEvent};

struct TrackBuilder {
    label: String,
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// Loads and parses a Chrome trace file.
pub fn load_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<TraceData> {
    let text = std::fs::read_to_string(path)?;
    parse_chrome_trace(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn num(v: Option<&Json>) -> u64 {
    v.and_then(Json::as_f64).unwrap_or(0.0) as u64
}

fn ts_ns(e: &Json) -> u64 {
    // `ts`/`dur` are microseconds with fractional ns ("1234.567").
    (e.get("ts").and_then(Json::as_f64).unwrap_or(0.0) * 1_000.0).round() as u64
}

fn link_word(src: u64, dst: u64) -> u64 {
    (src << 32) | dst
}

/// Interns a module-span name back into the trace string table, returning
/// `(module_id, op_id)`. Strings are leaked: ids must stay resolvable for
/// the program's lifetime, matching live-trace semantics.
fn intern_span_name(name: &str) -> (u64, u64) {
    let (module, op) = match name.split_once(':') {
        Some((m, o)) => (m, Some(o)),
        None => (name, None),
    };
    let m = hiper_trace::intern(Box::leak(module.to_string().into_boxed_str()));
    let o = op.map_or(0, |o| {
        hiper_trace::intern(Box::leak(o.to_string().into_boxed_str()))
    });
    (m, o)
}

/// Parses Chrome trace-event JSON text into [`TraceData`].
pub fn parse_chrome_trace(text: &str) -> Result<TraceData, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;

    let mut tracks: BTreeMap<(u64, u64), TrackBuilder> = BTreeMap::new();
    fn track(
        tracks: &mut BTreeMap<(u64, u64), TrackBuilder>,
        pid: u64,
        tid: u64,
    ) -> &mut TrackBuilder {
        tracks.entry((pid, tid)).or_insert_with(|| TrackBuilder {
            label: if pid == NETSIM_PID {
                format!("rank {}", tid)
            } else {
                format!("track-{}", tid)
            },
            events: Vec::new(),
            dropped: 0,
        })
    }

    for e in events {
        let name = e.get("name").and_then(Json::as_str).unwrap_or("");
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = num(e.get("pid"));
        let tid = num(e.get("tid"));
        let args = e.get("args");
        let arg = |k: &str| num(args.and_then(|a| a.get(k)));

        if ph == "M" {
            if name == "thread_name" && pid != NETSIM_PID {
                if let Some(label) = args.and_then(|a| a.get("name")).and_then(Json::as_str) {
                    track(&mut tracks, pid, tid).label = label.to_string();
                }
            }
            continue;
        }
        let ts = ts_ns(e);
        let push = |t: &mut TrackBuilder, kind: EventKind, a: u64, b: u64, c: u64| {
            t.events.push(TraceEvent {
                ts_ns: ts,
                kind,
                a,
                b,
                c,
            });
        };

        if pid == NETSIM_PID {
            match (name, ph) {
                (n, "X") if n.starts_with("msg to ") => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::NetSend,
                        link_word(arg("src"), arg("dst")),
                        arg("bytes"),
                        arg("delay_ns"),
                    );
                }
                ("deliver", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::NetDeliver,
                        link_word(arg("src"), tid),
                        arg("bytes"),
                        0,
                    );
                }
                ("drop", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::NetDrop,
                        link_word(arg("src"), arg("dst")),
                        arg("bytes"),
                        arg("cause"),
                    );
                }
                ("dup", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::NetDup,
                        link_word(arg("src"), arg("dst")),
                        arg("bytes"),
                        0,
                    );
                }
                ("retry", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::RelRetry,
                        link_word(tid, arg("dst")),
                        arg("seq"),
                        arg("attempt"),
                    );
                }
                ("msg_send", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::MsgSend,
                        arg("span"),
                        link_word(arg("src"), arg("dst")),
                        arg("msg"),
                    );
                }
                ("msg_deliver", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(
                        t,
                        EventKind::MsgDeliver,
                        arg("span"),
                        link_word(arg("src"), arg("dst")),
                        arg("msg"),
                    );
                }
                ("rank_down", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(t, EventKind::RankDown, arg("rank"), 0, 0);
                }
                ("rank_restored", _) => {
                    let t = track(&mut tracks, pid, tid);
                    push(t, EventKind::RankRestored, arg("rank"), arg("epoch"), 0);
                }
                _ => {}
            }
            continue;
        }

        let t = track(&mut tracks, pid, tid);
        match (name, ph) {
            ("dropped events", _) => t.dropped += arg("count"),
            ("spawn", _) => push(
                t,
                EventKind::TaskSpawn,
                arg("task"),
                arg("parent"),
                arg("place"),
            ),
            ("task", "B") => push(t, EventKind::TaskBegin, arg("task"), 0, arg("place")),
            ("task", "E") => push(t, EventKind::TaskEnd, arg("task"), 0, 0),
            ("pop", _) => push(t, EventKind::Pop, arg("task"), arg("place"), 0),
            ("steal", _) => push(
                t,
                EventKind::Steal,
                arg("task"),
                arg("victim"),
                arg("place"),
            ),
            ("steal.batch", _) => push(t, EventKind::BatchSteal, arg("banked"), 0, 0),
            ("injector", _) => push(t, EventKind::InjectorDrain, arg("task"), arg("place"), 0),
            ("park", "B") => push(t, EventKind::Park, 0, 0, 0),
            ("park", "E") => push(t, EventKind::Unpark, arg("woken"), 0, 0),
            ("task panic", _) => push(t, EventKind::TaskPanic, arg("task"), arg("place"), 0),
            ("task_retry", _) => push(
                t,
                EventKind::TaskRetry,
                arg("attempt"),
                arg("max_attempts"),
                0,
            ),
            (other, "B") => {
                let (m, o) = intern_span_name(other);
                push(t, EventKind::ModuleEnter, m, o, arg("bytes"));
            }
            (other, "E") => {
                let (m, o) = intern_span_name(other);
                push(t, EventKind::ModuleExit, m, o, 0);
            }
            _ => {}
        }
    }

    Ok(TraceData {
        tracks: tracks
            .into_iter()
            .map(|((pid, _tid), t)| hiper_trace::TrackData {
                label: t.label,
                events: t.events,
                dropped: t.dropped,
                // Ranked runtime tracks were exported at pid 10+rank;
                // recover the tag so the distributed critical-path walk
                // works on re-loaded traces too.
                rank: if pid >= RANK_PID_BASE {
                    Some((pid - RANK_PID_BASE) as usize)
                } else {
                    None
                },
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_trace::chrome::chrome_trace_json;
    use hiper_trace::TrackData;

    fn e(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b,
            c,
        }
    }

    #[test]
    fn roundtrips_task_events_through_chrome_json() {
        let original = TraceData {
            tracks: vec![TrackData {
                label: "hiper-worker-0".into(),
                events: vec![
                    e(1_000, EventKind::TaskSpawn, 7, 3, 0),
                    e(2_000, EventKind::Steal, 7, 1, 0),
                    e(2_500, EventKind::TaskBegin, 7, 0, 0),
                    e(9_000, EventKind::TaskEnd, 7, 0, 0),
                ],
                dropped: 4,
                rank: None,
            }],
        };
        let json = chrome_trace_json(&original);
        let loaded = parse_chrome_trace(&json).unwrap();
        assert_eq!(loaded.tracks.len(), 1);
        let t = &loaded.tracks[0];
        assert_eq!(t.label, "hiper-worker-0");
        assert_eq!(t.dropped, 4);
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::TaskSpawn,
                EventKind::Steal,
                EventKind::TaskBegin,
                EventKind::TaskEnd
            ]
        );
        let spawn = &t.events[0];
        assert_eq!((spawn.ts_ns, spawn.a, spawn.b), (1_000, 7, 3));
        let steal = &t.events[1];
        assert_eq!(steal.b, 1, "victim survives the roundtrip");
    }

    #[test]
    fn roundtrips_module_spans_and_net_events() {
        let m = hiper_trace::intern("mpi");
        let o = hiper_trace::intern("send");
        let original = TraceData {
            tracks: vec![TrackData {
                label: "hiper-worker-1".into(),
                events: vec![
                    e(100, EventKind::ModuleEnter, m, o, 64),
                    e(900, EventKind::ModuleExit, m, o, 0),
                    e(1_000, EventKind::NetSend, (2 << 32) | 5, 128, 40_000),
                ],
                dropped: 0,
                rank: None,
            }],
        };
        let json = chrome_trace_json(&original);
        let loaded = parse_chrome_trace(&json).unwrap();
        let runtime_track = loaded
            .tracks
            .iter()
            .find(|t| t.label == "hiper-worker-1")
            .unwrap();
        let enter = runtime_track
            .events
            .iter()
            .find(|ev| ev.kind == EventKind::ModuleEnter)
            .unwrap();
        assert_eq!(hiper_trace::resolve(enter.a), "mpi");
        assert_eq!(hiper_trace::resolve(enter.b), "send");
        assert_eq!(enter.c, 64);
        let net_track = loaded.tracks.iter().find(|t| t.label == "rank 2").unwrap();
        let send = &net_track.events[0];
        assert_eq!(send.kind, EventKind::NetSend);
        assert_eq!((send.a >> 32, send.a & 0xffff_ffff), (2, 5));
        assert_eq!((send.b, send.c), (128, 40_000));
    }

    #[test]
    fn roundtrips_ranked_tracks_and_msg_edges() {
        let original = TraceData {
            tracks: vec![
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(1_000, EventKind::TaskBegin, 7, 0, 0),
                        e(2_000, EventKind::TaskEnd, 7, 0, 0),
                    ],
                    dropped: 0,
                    rank: Some(1),
                },
                TrackData {
                    label: "netsim-engine".into(),
                    events: vec![
                        e(1_200, EventKind::MsgSend, 7, 1 << 32, 99),
                        e(1_700, EventKind::MsgDeliver, 7, 1 << 32, 99),
                    ],
                    dropped: 0,
                    rank: None,
                },
            ],
        };
        let json = chrome_trace_json(&original);
        assert!(json.contains("rank 1 runtime"), "ranked process meta");
        let loaded = parse_chrome_trace(&json).unwrap();
        let ranked = loaded
            .tracks
            .iter()
            .find(|t| t.label == "hiper-worker-0")
            .expect("ranked worker track survives");
        assert_eq!(ranked.rank, Some(1), "rank recovered from pid");
        let send = loaded
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .find(|ev| ev.kind == EventKind::MsgSend)
            .expect("msg_send survives");
        assert_eq!((send.a, send.b, send.c), (7, 1 << 32, 99));
        let deliver = loaded
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .find(|ev| ev.kind == EventKind::MsgDeliver)
            .expect("msg_deliver survives");
        assert_eq!((deliver.a, deliver.b, deliver.c), (7, 1 << 32, 99));
        assert_eq!(deliver.ts_ns, 1_700);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"other\": 1}").is_err());
    }
}
