//! SHA-1, from scratch.
//!
//! The reference UTS benchmark derives each tree node's random state by
//! hashing its parent's 20-byte descriptor with SHA-1 — the tree is a
//! deterministic function of the root seed regardless of execution order,
//! which is what makes distributed work-stealing verifiable. This module
//! reimplements SHA-1 (RFC 3174) so our UTS generates trees the same way.
//!
//! Not for cryptographic use; it exists for workload fidelity.

/// Output digest size in bytes.
pub const DIGEST_LEN: usize = 20;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Padded message: data || 0x80 || zeros || 64-bit bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Child-descriptor derivation as in UTS: hash of (parent descriptor,
/// big-endian child index).
pub fn uts_child(parent: &[u8; DIGEST_LEN], child_index: u32) -> [u8; DIGEST_LEN] {
    let mut buf = [0u8; DIGEST_LEN + 4];
    buf[..DIGEST_LEN].copy_from_slice(parent);
    buf[DIGEST_LEN..].copy_from_slice(&child_index.to_be_bytes());
    sha1(&buf)
}

/// Root descriptor from an integer seed (UTS hashes the seed string).
pub fn uts_root(seed: u32) -> [u8; DIGEST_LEN] {
    sha1(&seed.to_be_bytes())
}

/// Interprets the first 4 descriptor bytes as a uniform value in [0, 1).
pub fn descriptor_to_unit(desc: &[u8; DIGEST_LEN]) -> f64 {
    let v = u32::from_be_bytes(desc[..4].try_into().unwrap());
    v as f64 / (u32::MAX as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{:02x}", b)).collect()
    }

    /// RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        // One-million 'a's (streaming not needed; build the buffer).
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&million)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must not
        // panic and must differ.
        let digests: Vec<String> = (50..70).map(|n| hex(&sha1(&vec![0x5a; n]))).collect();
        for w in digests.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn child_derivation_is_deterministic_and_distinct() {
        let root = uts_root(42);
        let c0 = uts_child(&root, 0);
        let c1 = uts_child(&root, 1);
        assert_eq!(c0, uts_child(&root, 0));
        assert_ne!(c0, c1);
        assert_ne!(c0, root);
    }

    #[test]
    fn unit_interval_mapping() {
        let root = uts_root(7);
        let u = descriptor_to_unit(&root);
        assert!((0.0..1.0).contains(&u));
        // Different descriptors map to different units (overwhelmingly).
        let u2 = descriptor_to_unit(&uts_child(&root, 0));
        assert_ne!(u, u2);
    }
}
