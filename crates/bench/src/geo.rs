//! GEO — the 3-D geophysical subsurface-imaging stencil (paper Fig. 6,
//! weak scaling; uses the CUDA and MPI modules).
//!
//! A damped 7-point Jacobi wave-smoothing kernel over a 3-D grid
//! distributed in the z-direction: each rank owns `nz` interior planes plus
//! two halo planes on the (simulated) GPU, exchanging boundary planes with
//! its neighbors every time step.
//!
//! * [`run_reference`] — the hand-optimized MPI+CUDA baseline: blocking
//!   `cudaMemcpy` of the boundary planes, blocking send/recv, blocking copy
//!   of the received halos, then the full kernel. Every phase stalls the
//!   host thread (the paper's "blocking CUDA operations").
//! * [`run_hiper`] — the HiPER version: D2H copies return futures,
//!   `MPI_Isend_await` / `MPI_Irecv` compose with them, the *inner* kernel
//!   (which needs no halo) launches immediately and overlaps the exchange,
//!   and the two *boundary-plane* kernels are predicated on the halo
//!   arrival futures. Numerically identical to the reference.
//!
//! The two implementations produce bit-identical grids (Jacobi reads only
//! the old buffer, so per-cell operation order is fixed), which the tests
//! verify along with agreement against a single-rank serial oracle.

use std::sync::Arc;

use hiper_gpu::{DeviceBuffer, GpuModule, Stream};
use hiper_mpi::MpiModule;
use hiper_runtime::api;

/// Workload parameters (per-rank slab: weak scaling keeps these fixed as
/// ranks grow).
#[derive(Debug, Clone, Copy)]
pub struct GeoParams {
    /// Plane dimensions.
    pub nx: usize,
    /// Plane dimensions.
    pub ny: usize,
    /// Interior planes per rank.
    pub nz: usize,
    /// Time steps.
    pub steps: usize,
}

impl Default for GeoParams {
    fn default() -> Self {
        GeoParams {
            nx: 24,
            ny: 24,
            nz: 24,
            steps: 8,
        }
    }
}

impl GeoParams {
    fn plane(&self) -> usize {
        self.nx * self.ny
    }

    fn slab_elems(&self) -> usize {
        (self.nz + 2) * self.plane()
    }
}

const TAG_UP: u64 = 11;
const TAG_DOWN: u64 = 12;
const DAMP: f64 = 0.08;

/// Initial condition: a source plane in the global center (deterministic,
/// same for every decomposition).
pub fn init_slab(params: &GeoParams, rank: usize, nranks: usize) -> Vec<f64> {
    let plane = params.plane();
    let mut slab = vec![0.0; params.slab_elems()];
    let global_mid = (params.nz * nranks) / 2;
    for zl in 1..=params.nz {
        let zg = rank * params.nz + (zl - 1);
        if zg == global_mid {
            for i in 0..plane {
                let x = i % params.nx;
                let y = i / params.nx;
                slab[zl * plane + i] = ((x as f64 * 0.7).sin() + (y as f64 * 0.3).cos()) * 50.0;
            }
        }
    }
    slab
}

/// One Jacobi update of planes `zlo..=zhi` (1-based interior indices),
/// reading `old` and writing `new` (halos in `old` are read-only inputs).
pub fn kernel(params: &GeoParams, old: &[f64], new: &mut [f64], zlo: usize, zhi: usize) {
    let nx = params.nx;
    let plane = params.plane();
    let idx = |x: usize, y: usize, z: usize| z * plane + y * nx + x;
    for z in zlo..=zhi {
        for y in 0..params.ny {
            for x in 0..nx {
                let c = old[idx(x, y, z)];
                let xm = if x > 0 { old[idx(x - 1, y, z)] } else { 0.0 };
                let xp = if x + 1 < nx {
                    old[idx(x + 1, y, z)]
                } else {
                    0.0
                };
                let ym = if y > 0 { old[idx(x, y - 1, z)] } else { 0.0 };
                let yp = if y + 1 < params.ny {
                    old[idx(x, y + 1, z)]
                } else {
                    0.0
                };
                let zm = old[idx(x, y, z - 1)];
                let zp = old[idx(x, y, z + 1)];
                new[idx(x, y, z)] = c + DAMP * (xm + xp + ym + yp + zm + zp - 6.0 * c);
            }
        }
    }
}

/// Serial oracle: the whole global grid on one "rank" (halo planes are the
/// zero Dirichlet boundary).
pub fn serial_oracle(params: &GeoParams, nranks: usize) -> Vec<f64> {
    let global = GeoParams {
        nz: params.nz * nranks,
        ..*params
    };
    let mut old = init_slab(&global, 0, 1);
    let mut new = old.clone();
    for _ in 0..params.steps {
        kernel(&global, &old, &mut new, 1, global.nz);
        std::mem::swap(&mut old, &mut new);
    }
    old
}

/// The per-rank device-resident state: double-buffered slabs plus the
/// stream their operations are ordered on.
pub struct DeviceSlabs {
    old: Arc<DeviceBuffer>,
    new: Arc<DeviceBuffer>,
    stream: Stream,
}

fn upload(gpu: &Arc<GpuModule>, params: &GeoParams, rank: usize, nranks: usize) -> DeviceSlabs {
    let stream = gpu.create_stream(0);
    let bytes = params.slab_elems() * 8;
    let old = gpu.alloc(0, bytes);
    let new = gpu.alloc(0, bytes);
    let init = init_slab(params, rank, nranks);
    let raw: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
    gpu.memcpy_h2d_blocking(&stream, &old, 0, raw.clone());
    gpu.memcpy_h2d_blocking(&stream, &new, 0, raw);
    DeviceSlabs { old, new, stream }
}

fn device_kernel(
    params: &GeoParams,
    slabs: &DeviceSlabs,
    zlo: usize,
    zhi: usize,
) -> impl FnOnce() + Send + 'static {
    let params = *params;
    let old = Arc::clone(&slabs.old);
    let new = Arc::clone(&slabs.new);
    move || {
        // Work on exactly the plane range this launch updates (plus its
        // read halo): planes zlo-1 ..= zhi+1 of `old`, writing zlo ..= zhi
        // of `new`. Cell arithmetic is identical regardless of the split,
        // so the full kernel and the inner/boundary decomposition produce
        // bit-identical grids.
        let plane = params.plane();
        let nzr = zhi - zlo + 1;
        let rdims = GeoParams { nz: nzr, ..params };
        let mut old_region = vec![0.0f64; (nzr + 2) * plane];
        old.with(|bytes| {
            let base = (zlo - 1) * plane * 8;
            for (i, v) in old_region.iter_mut().enumerate() {
                *v = f64::from_le_bytes(bytes[base + i * 8..base + i * 8 + 8].try_into().unwrap());
            }
        });
        let mut new_region = vec![0.0f64; (nzr + 2) * plane];
        kernel(&rdims, &old_region, &mut new_region, 1, nzr);
        new.with_mut(|bytes| {
            let base = zlo * plane * 8;
            for i in 0..nzr * plane {
                let v = new_region[plane + i];
                bytes[base + i * 8..base + i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
        });
    }
}

fn plane_bytes(params: &GeoParams) -> usize {
    params.plane() * 8
}

/// Downloads the final slab (interior planes only) for validation.
pub fn download_interior(
    gpu: &Arc<GpuModule>,
    params: &GeoParams,
    slabs: &DeviceSlabs,
) -> Vec<f64> {
    let bytes = gpu.memcpy_d2h_blocking(
        &slabs.stream,
        &slabs.old,
        plane_bytes(params),
        params.nz * plane_bytes(params),
    );
    hiper_netsim::pod::from_bytes(&bytes)
}

/// The hand-optimized blocking MPI+CUDA reference.
pub fn run_reference(
    mpi: &Arc<MpiModule>,
    gpu: &Arc<GpuModule>,
    params: &GeoParams,
    rank: usize,
    nranks: usize,
) -> (DeviceSlabs, Vec<f64>) {
    let raw = Arc::clone(mpi.raw());
    let mut slabs = upload(gpu, params, rank, nranks);
    let up = if rank + 1 < nranks {
        Some(rank + 1)
    } else {
        None
    };
    let down = if rank > 0 { Some(rank - 1) } else { None };
    let pb = plane_bytes(params);

    for _step in 0..params.steps {
        // (1) Blocking D2H of the outgoing boundary planes.
        let top = gpu.memcpy_d2h_blocking(&slabs.stream, &slabs.old, params.nz * pb, pb);
        let bottom = gpu.memcpy_d2h_blocking(&slabs.stream, &slabs.old, pb, pb);
        // (2) Blocking halo exchange through the raw MPI library.
        if let Some(up) = up {
            raw.send(up, TAG_UP, bytes::Bytes::from(top));
        }
        if let Some(down) = down {
            raw.send(down, TAG_DOWN, bytes::Bytes::from(bottom));
        }
        if let Some(up) = up {
            let status = raw.recv(Some(up), Some(TAG_DOWN));
            // (3) Blocking H2D into the top halo plane.
            gpu.memcpy_h2d_blocking(
                &slabs.stream,
                &slabs.old,
                (params.nz + 1) * pb,
                status.data.to_vec(),
            );
        }
        if let Some(down) = down {
            let status = raw.recv(Some(down), Some(TAG_UP));
            gpu.memcpy_h2d_blocking(&slabs.stream, &slabs.old, 0, status.data.to_vec());
        }
        // (4) The full kernel, then swap.
        let done = gpu.launch_future(&slabs.stream, device_kernel(params, &slabs, 1, params.nz));
        done.wait();
        std::mem::swap(&mut slabs.old, &mut slabs.new);
    }
    let interior = download_interior(gpu, params, &slabs);
    (slabs, interior)
}

/// The HiPER version: future-composed MPI + CUDA + host scheduling (the
/// paper's §II-D listing as a benchmark).
pub fn run_hiper(
    mpi: &Arc<MpiModule>,
    gpu: &Arc<GpuModule>,
    params: &GeoParams,
    rank: usize,
    nranks: usize,
) -> (DeviceSlabs, Vec<f64>) {
    let mut slabs = upload(gpu, params, rank, nranks);
    let up = if rank + 1 < nranks {
        Some(rank + 1)
    } else {
        None
    };
    let down = if rank > 0 { Some(rank - 1) } else { None };
    let pb = plane_bytes(params);

    for _step in 0..params.steps {
        api::finish(|| {
            // (1) Asynchronous D2H of the boundary planes.
            let top_fut = gpu.memcpy_d2h_future(&slabs.stream, &slabs.old, params.nz * pb, pb);
            let bot_fut = gpu.memcpy_d2h_future(&slabs.stream, &slabs.old, pb, pb);

            // (2) Sends predicated on the D2H futures; receives posted now.
            let top_unit = unit_of(&top_fut);
            let bot_unit = unit_of(&bot_fut);
            if let Some(up) = up {
                let t = top_fut.clone();
                mpi.isend_await(
                    up,
                    TAG_UP,
                    move || hiper_netsim::pod::from_bytes::<f64>(&t.get()),
                    &top_unit,
                );
            }
            if let Some(down) = down {
                let b = bot_fut.clone();
                mpi.isend_await(
                    down,
                    TAG_DOWN,
                    move || hiper_netsim::pod::from_bytes::<f64>(&b.get()),
                    &bot_unit,
                );
            }
            let recv_up = up.map(|u| mpi.irecv_bytes(Some(u), Some(TAG_DOWN)));
            let recv_down = down.map(|d| mpi.irecv_bytes(Some(d), Some(TAG_UP)));

            // (3) The inner kernel needs no halo: launch immediately,
            // overlapping the exchange. (Planes 2..nz-1; boundary planes
            // wait for the halos.)
            let inner = if params.nz > 2 {
                Some(gpu.launch_future(
                    &slabs.stream,
                    device_kernel(params, &slabs, 2, params.nz - 1),
                ))
            } else {
                None
            };

            // (4) Halo H2D copies predicated on arrival; boundary-plane
            // kernels predicated on the copies (and ordered by the stream).
            let mut boundary_deps: Vec<hiper_runtime::Future<()>> = Vec::new();
            if let Some(recv) = recv_up {
                let gpu2 = Arc::clone(gpu);
                let stream = slabs.stream.clone();
                let dst = Arc::clone(&slabs.old);
                let halo_off = (params.nz + 1) * pb;
                let recv2 = recv.clone();
                let copied = chained(&unit_of(&recv), move || {
                    gpu2.memcpy_h2d_future(&stream, &dst, halo_off, recv2.get().data.to_vec())
                });
                boundary_deps.push(copied);
            }
            if let Some(recv) = recv_down {
                let gpu2 = Arc::clone(gpu);
                let stream = slabs.stream.clone();
                let dst = Arc::clone(&slabs.old);
                let recv2 = recv.clone();
                let copied = chained(&unit_of(&recv), move || {
                    gpu2.memcpy_h2d_future(&stream, &dst, 0, recv2.get().data.to_vec())
                });
                boundary_deps.push(copied);
            }
            if let Some(inner) = &inner {
                boundary_deps.push(inner.clone());
            }
            // Boundary planes: z = 1 and z = nz.
            let k1 = gpu.launch_await(
                &slabs.stream,
                &boundary_deps,
                device_kernel(params, &slabs, 1, 1),
            );
            let k2 = if params.nz > 1 {
                Some(gpu.launch_await(
                    &slabs.stream,
                    &boundary_deps,
                    device_kernel(params, &slabs, params.nz, params.nz),
                ))
            } else {
                None
            };

            // Block the step on everything (inside the finish).
            k1.wait();
            if let Some(k2) = k2 {
                k2.wait();
            }
            if let Some(inner) = inner {
                inner.wait();
            }
        })
        .expect("no task panicked");
        std::mem::swap(&mut slabs.old, &mut slabs.new);
    }
    let interior = download_interior(gpu, params, &slabs);
    (slabs, interior)
}

/// Converts any future into a unit future.
fn unit_of<T: Send + 'static>(f: &hiper_runtime::Future<T>) -> hiper_runtime::Future<()> {
    let p = hiper_runtime::Promise::new();
    let out = p.future();
    let mut slot = Some(p);
    f.on_ready(move || slot.take().expect("fired twice").put(()));
    out
}

/// Runs `then` (producing a future) once `dep` fires; returns a future on
/// the inner future's completion.
fn chained(
    dep: &hiper_runtime::Future<()>,
    then: impl FnOnce() -> hiper_runtime::Future<()> + Send + 'static,
) -> hiper_runtime::Future<()> {
    let p = hiper_runtime::Promise::new();
    let out = p.future();
    let slot = parking_lot::Mutex::new(Some((p, then)));
    dep.on_ready(move || {
        let (p, then) = slot.lock().take().expect("fired twice");
        let inner = then();
        let mut pslot = Some(p);
        inner.on_ready(move || pslot.take().expect("fired twice").put(()));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_netsim::{NetConfig, SpmdBuilder};
    use hiper_runtime::SchedulerModule;

    fn tiny() -> GeoParams {
        GeoParams {
            nx: 8,
            ny: 8,
            nz: 6,
            steps: 3,
        }
    }

    fn gather_and_check(results: Vec<(usize, Vec<f64>)>, params: &GeoParams, nranks: usize) {
        let oracle = serial_oracle(params, nranks);
        let plane = params.plane();
        let mut combined = vec![0.0; oracle.len()];
        for (rank, interior) in results {
            let base = (1 + rank * params.nz) * plane;
            combined[base..base + interior.len()].copy_from_slice(&interior);
        }
        // Oracle includes its own halo planes; compare interiors.
        let oracle_interior = &oracle[plane..oracle.len() - plane];
        let combined_interior = &combined[plane..combined.len() - plane];
        for (i, (a, b)) in oracle_interior.iter().zip(combined_interior).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "cell {} differs: oracle {} vs distributed {}",
                i,
                a,
                b
            );
        }
    }

    fn spmd_geo(nranks: usize, run_hiper_impl: bool) -> Vec<(usize, Vec<f64>)> {
        let params = tiny();
        SpmdBuilder::new(nranks)
            .net(NetConfig::default())
            .platform(|_| hiper_platform::autogen::smp_with_gpus(2, 1))
            .run(
                |_r, t| {
                    let mpi = MpiModule::new(t);
                    let gpu = GpuModule::with_pcie(hiper_gpu::PcieModel {
                        bandwidth: 1e11,
                        overhead: std::time::Duration::from_micros(2),
                    });
                    (
                        vec![
                            Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                            Arc::clone(&gpu) as Arc<dyn SchedulerModule>,
                        ],
                        (mpi, gpu),
                    )
                },
                move |env, (mpi, gpu)| {
                    let (_slabs, interior) = if run_hiper_impl {
                        run_hiper(&mpi, &gpu, &params, env.rank, env.nranks)
                    } else {
                        run_reference(&mpi, &gpu, &params, env.rank, env.nranks)
                    };
                    (env.rank, interior)
                },
            )
    }

    #[test]
    fn serial_oracle_conserves_shape() {
        let params = tiny();
        let grid = serial_oracle(&params, 2);
        assert!(grid.iter().all(|v| v.is_finite()));
        assert!(grid.iter().any(|v| v.abs() > 1e-9), "wave vanished");
    }

    #[test]
    fn reference_matches_serial_oracle() {
        let params = tiny();
        gather_and_check(spmd_geo(3, false), &params, 3);
    }

    #[test]
    fn hiper_matches_serial_oracle() {
        let params = tiny();
        gather_and_check(spmd_geo(3, true), &params, 3);
    }

    #[test]
    fn single_rank_no_neighbors() {
        let params = tiny();
        gather_and_check(spmd_geo(1, true), &params, 1);
    }
}
