//! HPGMG-FV — multigrid with finite-volume discretization (paper Fig. 4,
//! weak scaling; uses the UPC++ and MPI modules).
//!
//! A geometric multigrid V-cycle for the 3-D Poisson problem `-Δu = f` on a
//! cell-centered grid, distributed in the z-direction. Levels coarsen by 2
//! in every dimension while the local slab stays large enough; the coarsest
//! level is gathered to rank 0 and bottom-solved there, then the correction
//! is scattered back — the standard agglomeration strategy.
//!
//! Components: damped-Jacobi smoother (ω = 0.8, 2 pre/post sweeps),
//! finite-volume 8-cell-average restriction, piecewise-constant
//! prolongation.
//!
//! Two implementations behind one numeric core, differing only in the
//! communication/parallelism backend (so results are **bit-identical** —
//! verified by tests):
//!
//! * [`MpiOmpBackend`] — the reference hybrid: blocking MPI halo exchange +
//!   fork-join `parallel_for` smoother sweeps.
//! * [`HiperBackend`] — HiPER: future-based MPI halo exchange (both
//!   directions overlapped), `forasync` sweeps, and the UPC++ module's
//!   future-returning allreduce for residual norms.

use std::sync::Arc;

use hiper_forkjoin::Pool;
use hiper_mpi::{MpiModule, RawComm, ReduceOp};
use hiper_runtime::Runtime;
use hiper_upcxx::{UpcxxModule, UpcxxReduce};

/// Per-level slab dimensions (local to a rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// x extent.
    pub nx: usize,
    /// y extent.
    pub ny: usize,
    /// Local interior z planes.
    pub nz: usize,
}

impl Dims {
    fn plane(&self) -> usize {
        self.nx * self.ny
    }

    fn slab(&self) -> usize {
        (self.nz + 2) * self.plane()
    }

    fn coarsen(&self) -> Dims {
        Dims {
            nx: self.nx / 2,
            ny: self.ny / 2,
            nz: self.nz / 2,
        }
    }
}

/// Solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgParams {
    /// Finest-level local dims (weak scaling: fixed per rank).
    pub fine: Dims,
    /// V-cycles to run.
    pub vcycles: usize,
    /// Pre/post smoothing sweeps.
    pub smooth_sweeps: usize,
    /// Jacobi bottom-solve sweeps at the gathered coarsest level.
    pub bottom_sweeps: usize,
}

impl Default for MgParams {
    fn default() -> Self {
        MgParams {
            fine: Dims {
                nx: 16,
                ny: 16,
                nz: 8,
            },
            vcycles: 5,
            smooth_sweeps: 2,
            bottom_sweeps: 100,
        }
    }
}

const OMEGA: f64 = 0.8;

/// Unwraps an `Arc` whose other clones are being dropped by worker threads
/// that have already signalled completion (the drop may lag the signal by a
/// few instructions).
fn unwrap_spin<T>(mut arc: Arc<T>) -> T {
    loop {
        match Arc::try_unwrap(arc) {
            Ok(v) => return v,
            Err(a) => {
                arc = a;
                std::thread::yield_now();
            }
        }
    }
}

/// One level's state.
pub struct Level {
    /// Dimensions of the local slab.
    pub dims: Dims,
    /// Mesh spacing at this level.
    pub h: f64,
    /// Solution (with z halos).
    pub u: Vec<f64>,
    /// Right-hand side (with z halos; halos unused).
    pub f: Vec<f64>,
    /// Scratch for Jacobi / residual.
    pub tmp: Vec<f64>,
}

impl Level {
    fn new(dims: Dims, h: f64) -> Level {
        Level {
            dims,
            h,
            u: vec![0.0; dims.slab()],
            f: vec![0.0; dims.slab()],
            tmp: vec![0.0; dims.slab()],
        }
    }
}

/// Builds the level hierarchy (distributed levels only) and the RHS: a
/// deterministic pair of opposite-sign point sources in the global grid.
pub fn build_levels(params: &MgParams, rank: usize, nranks: usize) -> Vec<Level> {
    let mut levels = Vec::new();
    let mut dims = params.fine;
    let mut h = 1.0;
    while dims.nx >= 4 && dims.ny >= 4 && dims.nz >= 2 {
        levels.push(Level::new(dims, h));
        dims = dims.coarsen();
        h *= 2.0;
    }
    assert!(!levels.is_empty(), "fine grid too small for multigrid");
    // RHS sources on the fine level (global coordinates for determinism
    // across decompositions).
    let fine = &mut levels[0];
    let d = fine.dims;
    let nz_global = d.nz * nranks;
    let sources = [
        ((d.nx / 4, d.ny / 4, nz_global / 4), 1.0),
        ((3 * d.nx / 4, 3 * d.ny / 4, (3 * nz_global) / 4), -1.0),
    ];
    for ((x, y, zg), s) in sources {
        if zg / d.nz == rank {
            let zl = zg % d.nz + 1;
            fine.f[zl * d.plane() + y * d.nx + x] = s;
        }
    }
    levels
}

/// A smoother sweep body over one z plane: damped Jacobi writing `out`.
fn jacobi_plane(dims: Dims, h: f64, u: &[f64], f: &[f64], out: &mut [f64], z: usize) {
    let nx = dims.nx;
    let plane = dims.plane();
    let h2 = h * h;
    let idx = |x: usize, y: usize, z: usize| z * plane + y * nx + x;
    for y in 0..dims.ny {
        for x in 0..nx {
            let c = u[idx(x, y, z)];
            let xm = if x > 0 { u[idx(x - 1, y, z)] } else { 0.0 };
            let xp = if x + 1 < nx { u[idx(x + 1, y, z)] } else { 0.0 };
            let ym = if y > 0 { u[idx(x, y - 1, z)] } else { 0.0 };
            let yp = if y + 1 < dims.ny {
                u[idx(x, y + 1, z)]
            } else {
                0.0
            };
            let zm = u[idx(x, y, z - 1)];
            let zp = u[idx(x, y, z + 1)];
            // -Δu = f  =>  u* = (h²f + Σ neighbors) / 6
            let ustar = (h2 * f[idx(x, y, z)] + xm + xp + ym + yp + zm + zp) / 6.0;
            out[idx(x, y, z)] = c + OMEGA * (ustar - c);
        }
    }
}

/// Residual r = f + Δu over one plane.
fn residual_plane(dims: Dims, h: f64, u: &[f64], f: &[f64], out: &mut [f64], z: usize) {
    let nx = dims.nx;
    let plane = dims.plane();
    let h2 = h * h;
    let idx = |x: usize, y: usize, z: usize| z * plane + y * nx + x;
    for y in 0..dims.ny {
        for x in 0..nx {
            let c = u[idx(x, y, z)];
            let xm = if x > 0 { u[idx(x - 1, y, z)] } else { 0.0 };
            let xp = if x + 1 < nx { u[idx(x + 1, y, z)] } else { 0.0 };
            let ym = if y > 0 { u[idx(x, y - 1, z)] } else { 0.0 };
            let yp = if y + 1 < dims.ny {
                u[idx(x, y + 1, z)]
            } else {
                0.0
            };
            let zm = u[idx(x, y, z - 1)];
            let zp = u[idx(x, y, z + 1)];
            out[idx(x, y, z)] = f[idx(x, y, z)] - (6.0 * c - xm - xp - ym - yp - zm - zp) / h2;
        }
    }
}

/// FV restriction: coarse cell = average of its 8 fine children.
fn restrict_into(fine_dims: Dims, fine: &[f64], coarse_dims: Dims, coarse: &mut [f64]) {
    let fp = fine_dims.plane();
    let cp = coarse_dims.plane();
    let fidx = |x: usize, y: usize, z: usize| z * fp + y * fine_dims.nx + x;
    for cz in 1..=coarse_dims.nz {
        for cy in 0..coarse_dims.ny {
            for cx in 0..coarse_dims.nx {
                let (fx, fy, fz) = (cx * 2, cy * 2, (cz - 1) * 2 + 1);
                let mut acc = 0.0;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            acc += fine[fidx(fx + dx, fy + dy, fz + dz)];
                        }
                    }
                }
                coarse[cz * cp + cy * coarse_dims.nx + cx] = acc / 8.0;
            }
        }
    }
}

/// Piecewise-constant prolongation: add the coarse correction to the fine
/// solution.
fn prolong_add(coarse_dims: Dims, coarse: &[f64], fine_dims: Dims, fine: &mut [f64]) {
    let fp = fine_dims.plane();
    let cp = coarse_dims.plane();
    for fz in 1..=fine_dims.nz {
        let cz = (fz - 1) / 2 + 1;
        for fy in 0..fine_dims.ny {
            let cy = fy / 2;
            for fx in 0..fine_dims.nx {
                let cx = fx / 2;
                fine[fz * fp + fy * fine_dims.nx + fx] +=
                    coarse[cz * cp + cy * coarse_dims.nx + cx];
            }
        }
    }
}

/// Unsafe-but-disjoint parallel plane writer: planes are disjoint slices of
/// the output slab, so concurrent writes to different planes are sound.
struct PlanePtr(*mut f64, usize);
unsafe impl Send for PlanePtr {}
unsafe impl Sync for PlanePtr {}

impl PlanePtr {
    /// # Safety
    /// Caller guarantees plane `z` is touched by at most one thread.
    unsafe fn slab(&self) -> &'static mut [f64] {
        std::slice::from_raw_parts_mut(self.0, self.1)
    }
}

/// The communication/parallelism backend a solve runs on.
pub trait MgBackend: Send + Sync {
    /// Fills the z halo planes of `slab` from the neighbors (global z
    /// boundaries keep their zeros).
    fn exchange(&self, slab: &mut Vec<f64>, dims: Dims);
    /// Runs `body(z)` for every interior plane `z in 1..=nz`, possibly in
    /// parallel (planes are independent).
    fn for_planes(&self, nz: usize, body: Arc<dyn Fn(usize) + Send + Sync>);
    /// Global sum.
    fn allreduce_sum(&self, x: f64) -> f64;
    /// Gathers every rank's interior into rank 0 (z-concatenated).
    fn gather(&self, interior: Vec<f64>) -> Option<Vec<f64>>;
    /// Scatters rank slabs from rank 0 (inverse of `gather`).
    fn scatter(&self, full: Option<Vec<f64>>, elems_per_rank: usize) -> Vec<f64>;
}

fn smooth(level: &mut Level, backend: &dyn MgBackend, sweeps: usize) {
    for _ in 0..sweeps {
        backend.exchange(&mut level.u, level.dims);
        let dims = level.dims;
        let h = level.h;
        let u = std::mem::take(&mut level.u);
        let f = std::mem::take(&mut level.f);
        let mut out = std::mem::take(&mut level.tmp);
        {
            let uref = Arc::new(u);
            let fref = Arc::new(f);
            let outp = PlanePtr(out.as_mut_ptr(), out.len());
            let u2 = Arc::clone(&uref);
            let f2 = Arc::clone(&fref);
            backend.for_planes(
                dims.nz,
                Arc::new(move |z| {
                    // Safety: each z writes only its own plane.
                    let out = unsafe { outp.slab() };
                    jacobi_plane(dims, h, &u2, &f2, out, z);
                }),
            );
            level.u = unwrap_spin(uref);
            level.f = unwrap_spin(fref);
        }
        // New iterate is in `out`; halos are stale (re-exchanged next use).
        std::mem::swap(&mut level.u, &mut out);
        level.tmp = out;
    }
}

fn compute_residual(level: &mut Level, backend: &dyn MgBackend) {
    backend.exchange(&mut level.u, level.dims);
    let dims = level.dims;
    let h = level.h;
    let u = Arc::new(std::mem::take(&mut level.u));
    let f = Arc::new(std::mem::take(&mut level.f));
    let mut out = std::mem::take(&mut level.tmp);
    {
        let outp = PlanePtr(out.as_mut_ptr(), out.len());
        let u2 = Arc::clone(&u);
        let f2 = Arc::clone(&f);
        backend.for_planes(
            dims.nz,
            Arc::new(move |z| {
                let out = unsafe { outp.slab() };
                residual_plane(dims, h, &u2, &f2, out, z);
            }),
        );
    }
    level.u = unwrap_spin(u);
    level.f = unwrap_spin(f);
    level.tmp = out;
}

/// L2 norm of the residual on the finest level (global).
pub fn residual_norm(levels: &mut [Level], backend: &dyn MgBackend) -> f64 {
    compute_residual(&mut levels[0], backend);
    let local: f64 = {
        let l = &levels[0];
        let plane = l.dims.plane();
        l.tmp[plane..(l.dims.nz + 1) * plane]
            .iter()
            .map(|r| r * r)
            .sum()
    };
    backend.allreduce_sum(local).sqrt()
}

/// One V-cycle over the distributed hierarchy plus the gathered bottom
/// solve.
pub fn vcycle(levels: &mut [Level], params: &MgParams, backend: &dyn MgBackend) {
    vcycle_inner(levels, 0, params, backend);
}

fn vcycle_inner(levels: &mut [Level], l: usize, params: &MgParams, backend: &dyn MgBackend) {
    if l + 1 == levels.len() {
        bottom_solve(&mut levels[l], params, backend);
        return;
    }
    smooth(&mut levels[l], backend, params.smooth_sweeps);
    compute_residual(&mut levels[l], backend);
    // Restrict residual into the coarse RHS; zero the coarse solution.
    let (fine_slice, coarse_slice) = levels.split_at_mut(l + 1);
    let fine = &mut fine_slice[l];
    let coarse = &mut coarse_slice[0];
    restrict_into(fine.dims, &fine.tmp, coarse.dims, &mut coarse.f);
    coarse.u.iter_mut().for_each(|v| *v = 0.0);
    vcycle_inner(levels, l + 1, params, backend);
    let (fine_slice, coarse_slice) = levels.split_at_mut(l + 1);
    prolong_add(
        coarse_slice[0].dims,
        &coarse_slice[0].u,
        fine_slice[l].dims,
        &mut fine_slice[l].u,
    );
    smooth(&mut levels[l], backend, params.smooth_sweeps);
}

/// Agglomerated bottom solve: gather the coarsest level to rank 0, run
/// Jacobi sweeps there on the full grid, scatter the solution back.
fn bottom_solve(level: &mut Level, params: &MgParams, backend: &dyn MgBackend) {
    let dims = level.dims;
    let plane = dims.plane();
    let interior: Vec<f64> = level.f[plane..(dims.nz + 1) * plane].to_vec();
    let gathered_f = backend.gather(interior);
    let solved = gathered_f.map(|full_f| {
        let nranks = full_f.len() / (dims.nz * plane);
        let full_dims = Dims {
            nz: dims.nz * nranks,
            ..dims
        };
        let mut u = vec![0.0; full_dims.slab()];
        let mut f = vec![0.0; full_dims.slab()];
        f[plane..(full_dims.nz + 1) * plane].copy_from_slice(&full_f);
        let mut out = vec![0.0; full_dims.slab()];
        for _ in 0..params.bottom_sweeps {
            for z in 1..=full_dims.nz {
                jacobi_plane(full_dims, level.h, &u, &f, &mut out, z);
            }
            // Copy halos (zeros) and swap; halos never change (global
            // Dirichlet boundary).
            std::mem::swap(&mut u, &mut out);
        }
        u[plane..(full_dims.nz + 1) * plane].to_vec()
    });
    let mine = backend.scatter(solved, dims.nz * plane);
    level.u[plane..(dims.nz + 1) * plane].copy_from_slice(&mine);
}

// ---------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------

const HALO_TAG_UP: u64 = 21;
const HALO_TAG_DOWN: u64 = 22;

/// The reference hybrid: blocking MPI + fork-join loops.
pub struct MpiOmpBackend {
    pub raw: Arc<RawComm>,
    pub pool: Arc<Pool>,
}

impl MgBackend for MpiOmpBackend {
    fn exchange(&self, slab: &mut Vec<f64>, dims: Dims) {
        let p = self.raw.nranks();
        let me = self.raw.rank();
        let plane = dims.plane();
        let up = if me + 1 < p { Some(me + 1) } else { None };
        let down = if me > 0 { Some(me - 1) } else { None };
        // Blocking sends then blocking receives (eager sends cannot
        // deadlock).
        if let Some(up) = up {
            self.raw.send_slice(
                up,
                HALO_TAG_UP,
                &slab[dims.nz * plane..(dims.nz + 1) * plane],
            );
        }
        if let Some(down) = down {
            self.raw
                .send_slice(down, HALO_TAG_DOWN, &slab[plane..2 * plane]);
        }
        if let Some(up) = up {
            let (data, _, _) = self.raw.recv_vec::<f64>(Some(up), Some(HALO_TAG_DOWN));
            slab[(dims.nz + 1) * plane..].copy_from_slice(&data);
        }
        if let Some(down) = down {
            let (data, _, _) = self.raw.recv_vec::<f64>(Some(down), Some(HALO_TAG_UP));
            slab[..plane].copy_from_slice(&data);
        }
    }

    fn for_planes(&self, nz: usize, body: Arc<dyn Fn(usize) + Send + Sync>) {
        self.pool.parallel_for(nz, move |i| body(i + 1));
    }

    fn allreduce_sum(&self, x: f64) -> f64 {
        self.raw.allreduce(&[x], ReduceOp::Sum)[0]
    }

    fn gather(&self, interior: Vec<f64>) -> Option<Vec<f64>> {
        self.raw
            .gather(hiper_netsim::pod::to_bytes(&interior))
            .map(|parts| {
                parts
                    .iter()
                    .flat_map(|b| hiper_netsim::pod::from_bytes::<f64>(b))
                    .collect()
            })
    }

    fn scatter(&self, full: Option<Vec<f64>>, elems: usize) -> Vec<f64> {
        let me = self.raw.rank();
        if let Some(full) = full {
            debug_assert_eq!(me, 0);
            for r in 1..self.raw.nranks() {
                self.raw
                    .send_slice(r, HALO_TAG_UP + 10, &full[r * elems..(r + 1) * elems]);
            }
            full[..elems].to_vec()
        } else {
            self.raw.recv_vec::<f64>(Some(0), Some(HALO_TAG_UP + 10)).0
        }
    }
}

/// The HiPER backend: future-based MPI exchange, forasync sweeps, UPC++
/// allreduce.
pub struct HiperBackend {
    pub rt: Runtime,
    pub mpi: Arc<MpiModule>,
    pub upcxx: Arc<UpcxxModule>,
    pub reduce: UpcxxReduce,
}

impl MgBackend for HiperBackend {
    fn exchange(&self, slab: &mut Vec<f64>, dims: Dims) {
        let p = self.mpi.nranks();
        let me = self.mpi.rank();
        let plane = dims.plane();
        let up = if me + 1 < p { Some(me + 1) } else { None };
        let down = if me > 0 { Some(me - 1) } else { None };
        // Post both receives, send both planes, then consume the futures:
        // both directions are in flight simultaneously and the caller's
        // worker keeps executing other tasks while waiting.
        let recv_up = up.map(|u| self.mpi.irecv::<f64>(Some(u), Some(HALO_TAG_DOWN)));
        let recv_down = down.map(|d| self.mpi.irecv::<f64>(Some(d), Some(HALO_TAG_UP)));
        if let Some(up) = up {
            self.mpi
                .isend(
                    up,
                    HALO_TAG_UP,
                    &slab[dims.nz * plane..(dims.nz + 1) * plane],
                )
                .wait();
        }
        if let Some(down) = down {
            self.mpi
                .isend(down, HALO_TAG_DOWN, &slab[plane..2 * plane])
                .wait();
        }
        if let Some(recv) = recv_up {
            let (data, _, _) = recv.get();
            slab[(dims.nz + 1) * plane..].copy_from_slice(&data);
        }
        if let Some(recv) = recv_down {
            let (data, _, _) = recv.get();
            slab[..plane].copy_from_slice(&data);
        }
    }

    fn for_planes(&self, nz: usize, body: Arc<dyn Fn(usize) + Send + Sync>) {
        self.rt.forasync_1d(nz, 1, move |i| body(i + 1));
    }

    fn allreduce_sum(&self, x: f64) -> f64 {
        self.upcxx.allreduce_sum_f64(&self.reduce, &[x]).get()[0]
    }

    fn gather(&self, interior: Vec<f64>) -> Option<Vec<f64>> {
        self.mpi
            .raw()
            .gather(hiper_netsim::pod::to_bytes(&interior))
            .map(|parts| {
                parts
                    .iter()
                    .flat_map(|b| hiper_netsim::pod::from_bytes::<f64>(b))
                    .collect()
            })
    }

    fn scatter(&self, full: Option<Vec<f64>>, elems: usize) -> Vec<f64> {
        let raw = self.mpi.raw();
        if let Some(full) = full {
            for r in 1..raw.nranks() {
                raw.send_slice(r, HALO_TAG_UP + 10, &full[r * elems..(r + 1) * elems]);
            }
            full[..elems].to_vec()
        } else {
            raw.recv_vec::<f64>(Some(0), Some(HALO_TAG_UP + 10)).0
        }
    }
}

/// Runs `vcycles` V-cycles; returns the residual-norm trajectory
/// (norm before any cycle, then after each cycle).
pub fn solve(
    params: &MgParams,
    backend: &dyn MgBackend,
    rank: usize,
    nranks: usize,
) -> (Vec<Level>, Vec<f64>) {
    let mut levels = build_levels(params, rank, nranks);
    let mut norms = vec![residual_norm(&mut levels, backend)];
    for _ in 0..params.vcycles {
        vcycle(&mut levels, params, backend);
        norms.push(residual_norm(&mut levels, backend));
    }
    (levels, norms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_netsim::{NetConfig, SpmdBuilder};
    use hiper_runtime::SchedulerModule;
    use hiper_upcxx::UpcxxWorld;

    fn tiny() -> MgParams {
        MgParams {
            fine: Dims {
                nx: 16,
                ny: 16,
                nz: 8,
            },
            vcycles: 4,
            smooth_sweeps: 2,
            bottom_sweeps: 60,
        }
    }

    fn run_ref(nranks: usize, params: MgParams) -> Vec<(Vec<f64>, Vec<f64>)> {
        SpmdBuilder::new(nranks)
            .net(NetConfig::default())
            .workers_per_rank(1)
            .run(
                |_r, t| {
                    let mpi = MpiModule::new(t);
                    (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
                },
                move |env, mpi| {
                    let backend = MpiOmpBackend {
                        raw: Arc::clone(mpi.raw()),
                        pool: Pool::new(2),
                    };
                    let (levels, norms) = solve(&params, &backend, env.rank, env.nranks);
                    backend.pool.shutdown();
                    (levels[0].u.clone(), norms)
                },
            )
    }

    fn run_hiper_impl(nranks: usize, params: MgParams) -> Vec<(Vec<f64>, Vec<f64>)> {
        let uworld = UpcxxWorld::new(nranks, 1 << 16);
        let reduce = UpcxxReduce::new();
        SpmdBuilder::new(nranks)
            .net(NetConfig::default())
            .workers_per_rank(2)
            .run(
                move |_r, t| {
                    let mpi = MpiModule::new(t.clone());
                    let upcxx = UpcxxModule::new(uworld.clone(), t);
                    (
                        vec![
                            Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                            Arc::clone(&upcxx) as Arc<dyn SchedulerModule>,
                        ],
                        (mpi, upcxx, reduce.clone()),
                    )
                },
                move |env, (mpi, upcxx, reduce)| {
                    let backend = HiperBackend {
                        rt: env.runtime.clone(),
                        mpi,
                        upcxx,
                        reduce,
                    };
                    let (levels, norms) = solve(&params, &backend, env.rank, env.nranks);
                    (levels[0].u.clone(), norms)
                },
            )
    }

    #[test]
    fn residual_decreases_every_vcycle() {
        let results = run_ref(2, tiny());
        let norms = &results[0].1;
        assert!(norms[0] > 0.0);
        for w in norms.windows(2) {
            assert!(
                w[1] < w[0] * 0.75,
                "V-cycle did not reduce the residual enough: {} -> {}",
                w[0],
                w[1]
            );
        }
        // Overall reduction over 4 cycles.
        assert!(norms.last().unwrap() / norms[0] < 0.2, "{:?}", norms);
    }

    #[test]
    fn hiper_matches_reference_bitwise() {
        let params = tiny();
        let a = run_ref(2, params);
        let b = run_hiper_impl(2, params);
        for (rank, ((ua, na), (ub, nb))) in a.iter().zip(&b).enumerate() {
            assert_eq!(na, nb, "rank {} norm trajectories differ", rank);
            assert_eq!(ua, ub, "rank {} solutions differ", rank);
        }
    }

    #[test]
    fn distributed_matches_single_rank() {
        // 2 ranks with nz=8 each == 1 rank with nz=16 (same global grid).
        let p2 = tiny();
        let p1 = MgParams {
            fine: Dims {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            ..p2
        };
        let two = run_ref(2, p2);
        let one = run_ref(1, p1);
        // Same global arithmetic per cell; only the norm's summation order
        // differs across decompositions, so compare to tight tolerance.
        for (a, b) in two[0].1.iter().zip(&one[0].1) {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1e-30),
                "norms diverged: {} vs {}",
                a,
                b
            );
        }
    }

    #[test]
    fn build_levels_places_sources_deterministically() {
        let params = tiny();
        let l0 = build_levels(&params, 0, 2);
        let l1 = build_levels(&params, 1, 2);
        let total: f64 = l0[0].f.iter().sum::<f64>() + l1[0].f.iter().sum::<f64>();
        assert!((total - 0.0).abs() < 1e-12, "sources must cancel");
        let nonzero = l0[0].f.iter().filter(|v| **v != 0.0).count()
            + l1[0].f.iter().filter(|v| **v != 0.0).count();
        assert_eq!(nonzero, 2);
    }

    #[test]
    fn restriction_and_prolongation_adjoint_shapes() {
        let fine = Dims {
            nx: 8,
            ny: 8,
            nz: 4,
        };
        let coarse = fine.coarsen();
        let mut f = vec![0.0; fine.slab()];
        for (i, v) in f.iter_mut().enumerate() {
            *v = i as f64;
        }
        let mut c = vec![0.0; coarse.slab()];
        restrict_into(fine, &f, coarse, &mut c);
        // The average of the 8 children of coarse cell (0,0,1).
        let manual: f64 = {
            let idx = |x: usize, y: usize, z: usize| z * 64 + y * 8 + x;
            [
                idx(0, 0, 1),
                idx(1, 0, 1),
                idx(0, 1, 1),
                idx(1, 1, 1),
                idx(0, 0, 2),
                idx(1, 0, 2),
                idx(0, 1, 2),
                idx(1, 1, 2),
            ]
            .iter()
            .map(|&i| f[i])
            .sum::<f64>()
                / 8.0
        };
        assert_eq!(c[coarse.plane()], manual);
        // Prolongation adds the coarse value to all 8 children.
        let mut back = vec![0.0; fine.slab()];
        prolong_add(coarse, &c, fine, &mut back);
        assert_eq!(back[fine.plane()], c[coarse.plane()]);
        assert_eq!(back[fine.plane() + 1], c[coarse.plane()]);
    }
}
