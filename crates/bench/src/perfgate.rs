//! The performance regression gate: canonical microbench workloads
//! (scheduler fanout, MPI ping-pong, ISx), robust summary statistics
//! (median + interquartile range), and the noise-aware baseline comparison
//! the `perf_gate` binary applies in CI.
//!
//! The compare rule is deliberately conservative for noisy shared runners:
//! a metric regresses only when
//!
//! ```text
//! current.median > baseline.median * (1 + slack_pct/100)
//!                  + iqr_mult * (baseline.iqr + current.iqr)
//! ```
//!
//! i.e. the median must move past a relative slack *plus* a multiple of the
//! combined spread of both measurements. A genuinely slower scheduler fails
//! the gate; a noisy rep does not. The comparison is pure logic over two
//! summaries, so the doctored-baseline test exercises exactly the code CI
//! runs.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hiper_mpi::MpiModule;
use hiper_netsim::{Channel, Cluster, NetConfig, SpmdBuilder};
use hiper_platform::autogen;
use hiper_platform::json::Json;
use hiper_runtime::{api, Runtime, SchedulerModule};
use hiper_shmem::{ShmemModule, ShmemWorld};
use hiper_trace::diff::{DiffInput, DiffOptions, TraceDiff};

use crate::isx::{self, IsxParams};

/// Default relative slack (percent) before a median move counts.
pub const DEFAULT_SLACK_PCT: f64 = 10.0;
/// Default multiplier on combined IQR noise.
pub const DEFAULT_IQR_MULT: f64 = 3.0;
/// The gate's workloads, in baseline-metric order.
pub const GATE_BENCHES: [&str; 5] = [
    "fanout_ms",
    "isx_ms",
    "msg_churn_ms",
    "pingpong_ms",
    "spawn_churn_ms",
];

/// Robust summary of one metric's repeated measurements (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Median of the samples (ms).
    pub median: f64,
    /// Interquartile range, q75 - q25 (ms).
    pub iqr: f64,
    /// Number of samples summarized.
    pub reps: usize,
}

/// Sorts `samples` (ms) and reduces them to median + IQR.
pub fn summarize_ms(mut samples: Vec<f64>) -> MetricSummary {
    assert!(!samples.is_empty(), "cannot summarize zero samples");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| {
        let idx = ((samples.len() - 1) as f64 * p).round() as usize;
        samples[idx]
    };
    MetricSummary {
        median: q(0.5),
        iqr: (q(0.75) - q(0.25)).max(0.0),
        reps: samples.len(),
    }
}

/// One metric's verdict from a baseline comparison.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Metric name (e.g. `fanout_ms`).
    pub metric: String,
    /// Checked-in baseline summary.
    pub baseline: MetricSummary,
    /// Freshly measured summary (`None` when the metric vanished from the
    /// current run — itself a gate failure).
    pub current: Option<MetricSummary>,
    /// The threshold the current median was held against (ms).
    pub limit_ms: f64,
    /// True when this metric fails the gate.
    pub regressed: bool,
}

/// The regression predicate; see the module docs for the rule.
pub fn is_regression(
    baseline: &MetricSummary,
    current: &MetricSummary,
    slack_pct: f64,
    iqr_mult: f64,
) -> bool {
    current.median > regression_limit(baseline, current, slack_pct, iqr_mult)
}

/// The threshold the current median must stay at or under.
pub fn regression_limit(
    baseline: &MetricSummary,
    current: &MetricSummary,
    slack_pct: f64,
    iqr_mult: f64,
) -> f64 {
    baseline.median * (1.0 + slack_pct / 100.0) + iqr_mult * (baseline.iqr + current.iqr)
}

/// Compares every baseline metric against the current run. Metrics missing
/// from `current` fail (the gate must not silently narrow); metrics new in
/// `current` are ignored here and picked up when the baseline is updated.
pub fn compare(
    baseline: &BTreeMap<String, MetricSummary>,
    current: &BTreeMap<String, MetricSummary>,
    slack_pct: f64,
    iqr_mult: f64,
) -> Vec<GateCheck> {
    baseline
        .iter()
        .map(|(name, base)| match current.get(name) {
            Some(cur) => {
                let limit = regression_limit(base, cur, slack_pct, iqr_mult);
                GateCheck {
                    metric: name.clone(),
                    baseline: *base,
                    current: Some(*cur),
                    limit_ms: limit,
                    regressed: cur.median > limit,
                }
            }
            None => GateCheck {
                metric: name.clone(),
                baseline: *base,
                current: None,
                limit_ms: base.median,
                regressed: true,
            },
        })
        .collect()
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

/// Scheduler fanout: 8 producers × 1000 tiny consumers on a 4-worker SMP
/// runtime — the spawn/wake/steal hot path (same shape as the
/// `task_overhead` bench and the trace/chaos overhead gates).
pub fn run_fanout(reps: usize) -> MetricSummary {
    summarize_ms(fanout_samples(reps))
}

/// Raw per-rep samples (ms) for the fanout workload.
pub fn fanout_samples(reps: usize) -> Vec<f64> {
    let rt = Runtime::new(autogen::smp(4));
    let one = |rt: &Runtime| {
        let acc = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&acc);
        rt.block_on(move || {
            api::finish(|| {
                for _ in 0..8 {
                    let a = Arc::clone(&a);
                    api::async_(move || {
                        for _ in 0..1000 {
                            let a = Arc::clone(&a);
                            api::async_(move || {
                                a.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            })
            .expect("no task panicked");
        });
        assert_eq!(acc.load(Ordering::Relaxed), 8000);
    };
    for _ in 0..2 {
        one(&rt);
    }
    let samples = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            one(&rt);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    rt.shutdown();
    samples
}

/// MPI ping-pong: 50 empty-message round trips between 2 netsim ranks —
/// module taskification + simulated-interconnect latency path.
pub fn run_pingpong(reps: usize) -> MetricSummary {
    summarize_ms(pingpong_samples(reps))
}

/// Raw per-rep samples (ms) for the ping-pong workload.
pub fn pingpong_samples(reps: usize) -> Vec<f64> {
    const ROUNDS: usize = 50;
    let per_rank = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            move |env, mpi| {
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    mpi.barrier();
                    let t0 = Instant::now();
                    for _ in 0..ROUNDS {
                        if env.rank == 0 {
                            mpi.send::<u8>(1, 1, &[]);
                            let _ = mpi.recv::<u8>(Some(1), Some(2));
                        } else {
                            let _ = mpi.recv::<u8>(Some(0), Some(1));
                            mpi.send::<u8>(0, 2, &[]);
                        }
                    }
                    // First lap is warmup (handler registration, first
                    // steals); drop it.
                    if rep > 0 {
                        samples.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                }
                samples
            },
        );
    per_rank[0].clone()
}

/// ISx bucket sort, 2 SHMEM ranks × 2 workers, 4096 keys/rank — the
/// all-to-all + local-sort composite the paper's Fig. 5 scales up.
pub fn run_isx(reps: usize) -> MetricSummary {
    summarize_ms(isx_samples(reps))
}

/// Raw per-rep samples (ms) for the ISx workload.
pub fn isx_samples(reps: usize) -> Vec<f64> {
    let params = IsxParams {
        keys_per_rank: 4096,
        key_max: 1 << 16,
        ..Default::default()
    };
    let heap = (params.keys_per_rank * 2 * 8 + (1 << 16)).next_power_of_two();
    let world = ShmemWorld::new(2, heap);
    let per_rank = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            move |_r, t| {
                let shmem = ShmemModule::new(world.clone(), t);
                (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
            },
            move |_env, shmem| {
                let raw = Arc::clone(shmem.raw());
                let watermark = raw.alloc_watermark();
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    shmem.barrier_all();
                    raw.reset_alloc(watermark);
                    shmem.barrier_all();
                    let t0 = Instant::now();
                    let result = isx::run_hiper(&shmem, &params);
                    shmem.barrier_all();
                    let dt = t0.elapsed().as_secs_f64() * 1e3;
                    assert!(isx::verify(&raw, &params, &result));
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                samples
            },
        );
    per_rank[0].clone()
}

/// Spawn churn: the per-task *allocation* path, as opposed to the search
/// path `run_fanout` stresses. Three phases on a 4-worker SMP runtime:
///
/// 1. a future-based recursive fib(21) with a sequential cutoff at 10 —
///    ~376 `spawn_future` + help-first `get` round trips, i.e. a
///    promise/continuation storm;
/// 2. a single-producer burst of 4000 empty tasks under one finish scope —
///    the spawn/execute slab-recycling cycle with nothing else in the way;
/// 3. a grain-1 `forasync` over 50k iterations — saturated fine-grained
///    loop where eager splitting would publish ~one task per iteration.
pub fn run_spawn_churn(reps: usize) -> MetricSummary {
    summarize_ms(spawn_churn_samples(reps))
}

/// Raw per-rep samples (ms) for the spawn-churn workload.
pub fn spawn_churn_samples(reps: usize) -> Vec<f64> {
    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }
    fn fib(rt: &Runtime, n: u64) -> u64 {
        if n < 10 {
            return fib_seq(n);
        }
        let rt2 = rt.clone();
        let upper = rt.spawn_future(move || fib(&rt2, n - 1));
        let lower = fib(rt, n - 2);
        upper.get() + lower
    }
    let rt = Runtime::new(autogen::smp(4));
    let one = |rt: &Runtime| {
        let rt2 = rt.clone();
        rt.block_on(move || {
            assert_eq!(fib(&rt2, 21), 10946);
            api::finish(|| {
                for _ in 0..4000 {
                    api::async_(|| {});
                }
            })
            .expect("no task panicked");
            let acc = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&acc);
            rt2.forasync_1d(50_000, 1, move |_| {
                a.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), 50_000);
        });
    };
    for _ in 0..2 {
        one(&rt);
    }
    let samples = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            one(&rt);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    rt.shutdown();
    samples
}

/// Message churn: a 4-rank all-to-all storm of tiny tagged messages over
/// the raw transport — no module layer in the way, so the sample isolates
/// the netsim hot path the sharded delivery engine serves: concurrent send
/// admission from four threads, timing-wheel insertion/pop, and handler
/// dispatch. This is the gate metric for the small-message throughput the
/// coalescing and zero-copy work targets.
pub fn run_msg_churn(reps: usize) -> MetricSummary {
    summarize_ms(msg_churn_samples(reps))
}

/// Raw per-rep samples (ms) for the message-churn workload.
pub fn msg_churn_samples(reps: usize) -> Vec<f64> {
    const RANKS: usize = 4;
    const MSGS: u64 = 250; // per (src, dst) pair per rep
    let cluster = Cluster::start(RANKS, NetConfig::default());
    let delivered = Arc::new(AtomicU64::new(0));
    for r in 0..RANKS {
        let d = Arc::clone(&delivered);
        cluster.transport(r).register_handler(
            Channel::APP,
            Box::new(move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }
    let payload = bytes::Bytes::from_static(&[0x5a; 16]);
    let per_rep = (RANKS * (RANKS - 1)) as u64 * MSGS;
    // One burst: every rank floods every other rank from its own thread,
    // then the caller waits for all `per_rep` deliveries of that lap.
    let one = |lap: u64| {
        std::thread::scope(|s| {
            for src in 0..RANKS {
                let t = cluster.transport(src);
                let payload = payload.clone();
                s.spawn(move || {
                    for i in 0..MSGS {
                        for dst in 0..RANKS {
                            if dst != src {
                                t.send(dst, Channel::APP, i, payload.clone());
                            }
                        }
                    }
                });
            }
        });
        let target = (lap + 1) * per_rep;
        while delivered.load(Ordering::Relaxed) < target {
            std::thread::yield_now();
        }
    };
    let mut lap = 0u64;
    for _ in 0..2 {
        one(lap);
        lap += 1;
    }
    let samples = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            one(lap);
            lap += 1;
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    cluster.stop();
    samples
}

/// Raw samples for one named gate workload; `None` for unknown names.
pub fn bench_samples(bench: &str, reps: usize) -> Option<Vec<f64>> {
    match bench {
        "fanout_ms" => Some(fanout_samples(reps)),
        "pingpong_ms" => Some(pingpong_samples(reps)),
        "isx_ms" => Some(isx_samples(reps)),
        "msg_churn_ms" => Some(msg_churn_samples(reps)),
        "spawn_churn_ms" => Some(spawn_churn_samples(reps)),
        _ => None,
    }
}

/// Runs the full gate suite, returning raw per-rep samples per metric.
pub fn run_all_samples(reps: usize) -> BTreeMap<String, Vec<f64>> {
    GATE_BENCHES
        .iter()
        .map(|&b| (b.to_string(), bench_samples(b, reps).unwrap()))
        .collect()
}

/// Runs the full gate suite, returning named summaries.
pub fn run_all(reps: usize) -> BTreeMap<String, MetricSummary> {
    run_all_samples(reps)
        .into_iter()
        .map(|(name, samples)| (name, summarize_ms(samples)))
        .collect()
}

// ---------------------------------------------------------------------
// Differential profiling — baseline profiles and regression attribution
// ---------------------------------------------------------------------

/// Where the gate keeps `bench`'s baseline profile under `dir`.
pub fn profile_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("{}.profile.json", bench))
}

/// Runs one traced + metered rep of `bench` and extracts its compact
/// profile. Tracing and metrics are force-enabled for the window and
/// restored after; events drained before the window are discarded so the
/// profile covers exactly this rep (plus its in-process warmups — both
/// baseline and candidate record them identically, so the DAGs align).
pub fn record_profile(bench: &str) -> Result<DiffInput, String> {
    if !GATE_BENCHES.contains(&bench) {
        return Err(format!("unknown gate benchmark: {}", bench));
    }
    let metrics_were_on = hiper_metrics::enabled();
    let _ = hiper_trace::drain(); // discard whatever came before the window
    let before = hiper_metrics::snapshot();
    hiper_metrics::set_enabled(true);
    hiper_trace::set_enabled(true);
    let ran = bench_samples(bench, 1).is_some();
    hiper_trace::set_enabled(false);
    hiper_metrics::set_enabled(metrics_were_on);
    let data = hiper_trace::drain();
    debug_assert!(ran);
    let delta = hiper_metrics::snapshot().delta_since(&before);
    let mut profile = DiffInput::from_trace(bench, &data);
    profile.apply_metrics(&delta);
    Ok(profile)
}

/// Records and writes a baseline profile for every gate workload
/// (`perf_gate --update-baseline` calls this so a later failing run has
/// something to diff against). Returns the files written.
pub fn record_baseline_profiles(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {}", dir.display(), e))?;
    let mut written = Vec::new();
    for bench in GATE_BENCHES {
        let profile = record_profile(bench)?;
        let path = profile_path(dir, bench);
        fs::write(&path, profile.to_json())
            .map_err(|e| format!("write {}: {}", path.display(), e))?;
        written.push(path);
    }
    Ok(written)
}

/// One failing benchmark's differential-profiling verdict.
#[derive(Debug)]
pub struct Attribution {
    /// The benchmark that regressed.
    pub bench: String,
    /// The structured diff (baseline profile vs a fresh traced rep).
    pub diff: TraceDiff,
    /// `ATTRIBUTION_<bench>.md` body.
    pub markdown: String,
    /// `ATTRIBUTION_<bench>.json` body.
    pub json: String,
}

/// Re-runs a failing benchmark traced and diffs it against the stored
/// baseline profile. The baseline is read *before* the expensive traced
/// rep so a missing profile fails fast.
pub fn attribute_regression(
    bench: &str,
    trace_dir: &Path,
    top: usize,
) -> Result<Attribution, String> {
    let base_path = profile_path(trace_dir, bench);
    let text = fs::read_to_string(&base_path).map_err(|e| {
        format!(
            "no baseline profile {} (re-run perf_gate --update-baseline): {}",
            base_path.display(),
            e
        )
    })?;
    let base = DiffInput::parse_json(&text)
        .map_err(|e| format!("parse {}: {}", base_path.display(), e))?;
    let cand = record_profile(bench)?;
    let diff = TraceDiff::build(&base, &cand, DiffOptions { top });
    Ok(Attribution {
        bench: bench.to_string(),
        markdown: diff.to_markdown(),
        json: diff.to_json(),
        diff,
    })
}

// ---------------------------------------------------------------------
// JSON (de)serialization — baseline files and BENCH_perf_gate.json
// ---------------------------------------------------------------------

/// Serializes summaries into the gate's JSON document.
pub fn gate_json(metrics: &BTreeMap<String, MetricSummary>) -> String {
    let mut doc = BTreeMap::new();
    doc.insert("bench".to_string(), Json::from("perf_gate"));
    let mut m = BTreeMap::new();
    for (name, s) in metrics {
        let mut entry = BTreeMap::new();
        entry.insert("median_ms".to_string(), Json::Number(s.median));
        entry.insert("iqr_ms".to_string(), Json::Number(s.iqr));
        entry.insert("reps".to_string(), Json::from(s.reps));
        m.insert(name.clone(), Json::Object(entry));
    }
    doc.insert("metrics".to_string(), Json::Object(m));
    let mut out = Json::Object(doc).pretty();
    out.push('\n');
    out
}

/// Serializes raw per-rep samples into the gate's JSON document: each
/// metric carries its summary plus a `samples_ms` array, so a CI artifact
/// records exactly what the medians were computed from. `parse_gate_json`
/// ignores the extra key, keeping old baselines readable.
pub fn gate_json_with_samples(samples: &BTreeMap<String, Vec<f64>>) -> String {
    let mut doc = BTreeMap::new();
    doc.insert("bench".to_string(), Json::from("perf_gate"));
    let mut m = BTreeMap::new();
    for (name, raw) in samples {
        let s = summarize_ms(raw.clone());
        let mut entry = BTreeMap::new();
        entry.insert("median_ms".to_string(), Json::Number(s.median));
        entry.insert("iqr_ms".to_string(), Json::Number(s.iqr));
        entry.insert("reps".to_string(), Json::from(s.reps));
        entry.insert(
            "samples_ms".to_string(),
            Json::Array(raw.iter().map(|&v| Json::Number(v)).collect()),
        );
        m.insert(name.clone(), Json::Object(entry));
    }
    doc.insert("metrics".to_string(), Json::Object(m));
    let mut out = Json::Object(doc).pretty();
    out.push('\n');
    out
}

/// Parses a gate JSON document back into summaries.
pub fn parse_gate_json(text: &str) -> Result<BTreeMap<String, MetricSummary>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or("missing metrics object")?;
    let mut out = BTreeMap::new();
    for (name, entry) in metrics {
        let field = |k: &str| {
            entry
                .get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {} missing {}", name, k))
        };
        out.insert(
            name.clone(),
            MetricSummary {
                median: field("median_ms")?,
                iqr: field("iqr_ms")?,
                reps: field("reps")? as usize,
            },
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(median: f64, iqr: f64) -> MetricSummary {
        MetricSummary {
            median,
            iqr,
            reps: 9,
        }
    }

    #[test]
    fn summarize_is_robust_to_outliers() {
        let m = summarize_ms(vec![1.0, 1.1, 0.9, 1.0, 100.0]);
        assert_eq!(m.median, 1.0);
        assert_eq!(m.reps, 5);
        assert!(m.iqr < 100.0);
    }

    #[test]
    fn regression_requires_clearing_slack_and_noise() {
        // 10% slack, 3x IQR: 1.0ms baseline with 0.05 IQR -> limit 1.25.
        let base = s(1.0, 0.05);
        assert!(!is_regression(&base, &s(1.24, 0.0), 10.0, 3.0));
        assert!(is_regression(&base, &s(1.26, 0.0), 10.0, 3.0));
        // Wide current-run noise raises the limit.
        assert!(!is_regression(&base, &s(1.5, 0.1), 10.0, 3.0));
    }

    #[test]
    fn compare_flags_missing_metric() {
        let mut base = BTreeMap::new();
        base.insert("fanout_ms".to_string(), s(1.0, 0.1));
        let checks = compare(&base, &BTreeMap::new(), 10.0, 3.0);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].regressed);
        assert!(checks[0].current.is_none());
    }

    #[test]
    fn json_roundtrip() {
        let mut metrics = BTreeMap::new();
        metrics.insert("fanout_ms".to_string(), s(1.2345, 0.0678));
        metrics.insert("isx_ms".to_string(), s(20.5, 1.25));
        let text = gate_json(&metrics);
        let parsed = parse_gate_json(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        let f = parsed["fanout_ms"];
        assert!((f.median - 1.2345).abs() < 1e-9);
        assert!((f.iqr - 0.0678).abs() < 1e-9);
        assert_eq!(f.reps, 9);
    }

    #[test]
    fn samples_json_stays_summary_compatible() {
        let mut samples = BTreeMap::new();
        samples.insert("fanout_ms".to_string(), vec![3.0, 1.0, 2.0]);
        let text = gate_json_with_samples(&samples);
        assert!(text.contains("samples_ms"));
        let parsed = parse_gate_json(&text).unwrap();
        assert_eq!(parsed["fanout_ms"].median, 2.0);
        assert_eq!(parsed["fanout_ms"].reps, 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_gate_json("{}").is_err());
        assert!(parse_gate_json("{\"metrics\": {\"x\": {}}}").is_err());
    }
}
