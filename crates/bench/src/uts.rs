//! UTS — Unbalanced Tree Search (paper Fig. 7, strong scaling).
//!
//! The tree is a deterministic function of the root seed: each node carries
//! a 20-byte SHA-1 descriptor, children's descriptors are SHA-1 hashes of
//! (parent, index) (see [`crate::sha1`]), and the number of children is
//! geometrically distributed with mean `b0`, truncated at `max_depth` — the
//! GEO tree family of the reference UTS. Counting the nodes requires
//! traversing them, and the tree's imbalance is what stresses distributed
//! load balancing.
//!
//! All three distributed implementations share the same app-level
//! work-stealing protocol over the symmetric heap (a per-rank surplus buffer
//! guarded by a CAS lock, a global outstanding-work counter at rank 0, and a
//! done flag), exactly as the paper's three versions share "manual,
//! application-level, distributed load balancing". They differ in the
//! *local* execution model:
//!
//! * [`run_omp`] — OpenSHMEM+OpenMP: fork-join `parallel_for` rounds over
//!   frontier batches (implicit barrier per batch).
//! * [`run_omp_tasks`] — OpenSHMEM+OpenMP Tasks: per-node dynamic tasks but
//!   a **coarse `taskwait` before every load-balancing/termination check**
//!   (the §III-C1 weakness).
//! * [`run_hiper`] — AsyncSHMEM: recursive HiPER tasks (fine-grain
//!   work-stealing), future-based steals, and `shmem_async_when` for
//!   termination notification.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use hiper_forkjoin::Pool;
use hiper_runtime::api;
use hiper_shmem::{Cmp, RawShmem, ShmemModule, SymPtr};

use crate::sha1::{descriptor_to_unit, uts_child, uts_root, DIGEST_LEN};

/// GEO-tree parameters.
#[derive(Debug, Clone, Copy)]
pub struct UtsParams {
    /// Root seed.
    pub seed: u32,
    /// Expected branching factor (geometric distribution mean).
    pub b0: f64,
    /// Fixed fanout of the root (as in reference UTS, so the tree never
    /// dies at depth zero).
    pub root_children: u32,
    /// Depth cutoff: nodes at this depth are leaves.
    pub max_depth: u32,
}

impl Default for UtsParams {
    fn default() -> Self {
        UtsParams {
            seed: 19,
            b0: 2.0,
            root_children: 4,
            max_depth: 13,
        }
    }
}

/// A tree node: depth plus SHA-1 descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Depth in the tree (root = 0).
    pub depth: u32,
    /// SHA-1 state identifying the node.
    pub desc: [u8; DIGEST_LEN],
}

impl Node {
    /// The root node of the parameterized tree.
    pub fn root(params: &UtsParams) -> Node {
        Node {
            depth: 0,
            desc: uts_root(params.seed),
        }
    }

    /// Number of children (deterministic in the descriptor).
    pub fn num_children(&self, params: &UtsParams) -> u32 {
        if self.depth >= params.max_depth {
            return 0;
        }
        if self.depth == 0 {
            return params.root_children;
        }
        // Geometric with mean b0: P(X = k) = (1-p) p^k, p = b0/(1+b0).
        let p = params.b0 / (1.0 + params.b0);
        let u = descriptor_to_unit(&self.desc);
        let k = ((1.0 - u).ln() / p.ln()).floor();
        k.max(0.0) as u32
    }

    /// The `i`th child.
    pub fn child(&self, i: u32) -> Node {
        Node {
            depth: self.depth + 1,
            desc: uts_child(&self.desc, i),
        }
    }

    /// Packs a node into four u64 words for the symmetric heap.
    pub fn pack(&self) -> [u64; 4] {
        let mut w = [0u64; 4];
        w[0] = self.depth as u64;
        let mut buf = [0u8; 24];
        buf[..DIGEST_LEN].copy_from_slice(&self.desc);
        for i in 0..3 {
            w[i + 1] = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        w
    }

    /// Unpacks a node from four u64 words.
    pub fn unpack(w: &[u64; 4]) -> Node {
        let mut buf = [0u8; 24];
        for i in 0..3 {
            buf[i * 8..i * 8 + 8].copy_from_slice(&w[i + 1].to_le_bytes());
        }
        let mut desc = [0u8; DIGEST_LEN];
        desc.copy_from_slice(&buf[..DIGEST_LEN]);
        Node {
            depth: w[0] as u32,
            desc,
        }
    }
}

/// Sequential oracle: exact node count by depth-first traversal.
pub fn seq_count(params: &UtsParams) -> u64 {
    let mut stack = vec![Node::root(params)];
    let mut count = 0u64;
    while let Some(node) = stack.pop() {
        count += 1;
        for i in 0..node.num_children(params) {
            stack.push(node.child(i));
        }
    }
    count
}

// ---------------------------------------------------------------------
// Shared distributed machinery
// ---------------------------------------------------------------------

/// Surplus-buffer capacity in nodes.
const SURPLUS_CAP: usize = 2048;
/// Local queue size above which surplus is exported.
const SPILL_THRESHOLD: usize = 512;
/// Outstanding-work deltas are flushed to rank 0 in batches this size.
const DELTA_BATCH: i64 = 64;

/// Symmetric-heap layout for the stealing protocol (allocated identically
/// on every rank).
pub struct StealArena {
    lock: SymPtr,
    count: SymPtr,
    buf: SymPtr,
    /// Outstanding-work counter (meaningful at rank 0).
    outstanding: SymPtr,
    /// Done flag (set on every rank by rank 0).
    done: SymPtr,
}

impl StealArena {
    /// Collective allocation; all ranks must call in the same order.
    pub fn alloc(raw: &RawShmem) -> StealArena {
        StealArena {
            lock: raw.malloc64(1),
            count: raw.malloc64(1),
            buf: raw.malloc64(SURPLUS_CAP * 4),
            outstanding: raw.malloc64(1),
            done: raw.malloc64(1),
        }
    }

    fn init(&self, raw: &RawShmem, is_root_rank: bool) {
        raw.heap().store_u64(self.lock.offset, 0);
        raw.heap().store_u64(self.count.offset, 0);
        raw.heap().store_i64(self.done.offset, 0);
        raw.heap()
            .store_i64(self.outstanding.offset, if is_root_rank { 1 } else { 0 });
    }
}

/// Rank-local bookkeeping shared by the implementations.
struct LocalState {
    raw: Arc<RawShmem>,
    arena: StealArena,
    /// Locally accumulated (children - 1) deltas not yet flushed to rank 0.
    pending_delta: AtomicI64,
    /// Nodes counted by this rank.
    counted: AtomicU64,
    done: AtomicBool,
}

impl LocalState {
    fn new(raw: Arc<RawShmem>, arena: StealArena) -> LocalState {
        LocalState {
            raw,
            arena,
            pending_delta: AtomicI64::new(0),
            counted: AtomicU64::new(0),
            done: AtomicBool::new(false),
        }
    }

    /// Records one processed node with `children` children; flushes the
    /// outstanding-work delta in batches.
    fn record(&self, children: u32) {
        self.counted.fetch_add(1, Ordering::Relaxed);
        let delta = children as i64 - 1;
        let acc = self.pending_delta.fetch_add(delta, Ordering::AcqRel) + delta;
        if acc.abs() >= DELTA_BATCH {
            self.flush_delta();
        }
    }

    /// Pushes the accumulated delta to rank 0's outstanding counter.
    fn flush_delta(&self) {
        let delta = self.pending_delta.swap(0, Ordering::AcqRel);
        if delta != 0 {
            self.raw
                .fadd(0, self.arena.outstanding.offset, delta as u64);
        }
    }

    /// Rank 0 only: when the counter hits zero, broadcast the done flag.
    fn maybe_announce_done(&self) {
        if self.raw.rank() == 0 && self.raw.heap().load_i64(self.arena.outstanding.offset) == 0 {
            for r in 0..self.raw.nranks() {
                self.raw.put64(r, self.arena.done.offset, &[1]);
            }
            self.raw.quiet();
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) || self.raw.heap().load_i64(self.arena.done.offset) == 1
    }

    /// Exports surplus nodes into the local surplus buffer for thieves.
    fn export_surplus(&self, frontier: &mut Vec<Node>) {
        if frontier.len() <= SPILL_THRESHOLD {
            return;
        }
        let me = self.raw.rank();
        // Try-lock our own surplus buffer.
        if self.raw.cswap(me, self.arena.lock.offset, 0, 1) != 0 {
            return;
        }
        let existing = self.raw.heap().load_u64(self.arena.count.offset) as usize;
        let room = SURPLUS_CAP.saturating_sub(existing);
        let spill = (frontier.len() / 2).min(room);
        for i in 0..spill {
            let node = frontier.pop().expect("sized above");
            let w = node.pack();
            for (j, word) in w.iter().enumerate() {
                self.raw
                    .heap()
                    .store_u64(self.arena.buf.at64((existing + i) * 4 + j), *word);
            }
        }
        self.raw
            .heap()
            .store_u64(self.arena.count.offset, (existing + spill) as u64);
        self.raw.heap().store_u64(self.arena.lock.offset, 0);
    }

    /// Attempts to steal from `victim`; returns stolen nodes.
    fn steal_from(&self, victim: usize) -> Vec<Node> {
        // Remote try-lock.
        if self.raw.cswap(victim, self.arena.lock.offset, 0, 1) != 0 {
            return Vec::new();
        }
        let count_bytes = self.raw.get(victim, self.arena.count.offset, 8);
        let count = u64::from_le_bytes(count_bytes[..8].try_into().unwrap()) as usize;
        let mut stolen = Vec::new();
        if count > 0 {
            let data = self.raw.get(victim, self.arena.buf.offset, count * 4 * 8);
            for i in 0..count {
                let mut w = [0u64; 4];
                for (j, word) in w.iter_mut().enumerate() {
                    *word = u64::from_le_bytes(
                        data[(i * 4 + j) * 8..(i * 4 + j) * 8 + 8]
                            .try_into()
                            .unwrap(),
                    );
                }
                stolen.push(Node::unpack(&w));
            }
            self.raw.put64(victim, self.arena.count.offset, &[0]);
            self.raw.quiet();
        }
        // Unlock.
        self.raw.put64(victim, self.arena.lock.offset, &[0]);
        self.raw.quiet();
        stolen
    }

    /// One idle-phase pass: flush deltas, try every victim once, check
    /// termination.
    fn idle_pass(&self, frontier: &mut Vec<Node>) -> bool {
        self.flush_delta();
        self.maybe_announce_done();
        if self.is_done() {
            return true;
        }
        let p = self.raw.nranks();
        let me = self.raw.rank();
        // k = 0 first: reclaim our own exported surplus before stealing
        // remotely (and so a single rank can always drain itself).
        for k in 0..p {
            let victim = (me + k) % p;
            let stolen = self.steal_from(victim);
            if !stolen.is_empty() {
                frontier.extend(stolen);
                return false;
            }
        }
        if self.is_done() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
        false
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct UtsResult {
    /// Nodes counted by this rank.
    pub local_count: u64,
    /// Global node total (identical on every rank).
    pub global_count: u64,
}

fn finish_run(state: &LocalState) -> UtsResult {
    state.flush_delta();
    // Wait for global done (covers stragglers' deltas still in flight).
    loop {
        state.maybe_announce_done();
        if state.is_done() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let local = state.counted.load(Ordering::SeqCst);
    let totals = state.raw.sum_to_all_u64(&[local]);
    UtsResult {
        local_count: local,
        global_count: totals[0],
    }
}

fn initial_frontier(raw: &RawShmem, params: &UtsParams) -> Vec<Node> {
    if raw.rank() == 0 {
        vec![Node::root(params)]
    } else {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Implementation A: OpenSHMEM + OpenMP (parallel_for rounds)
// ---------------------------------------------------------------------

/// OpenSHMEM+OpenMP: frontier batches expanded with `parallel_for`
/// (implicit barrier per batch), blocking raw SHMEM for load balancing.
pub fn run_omp(raw: &Arc<RawShmem>, pool: &Arc<Pool>, params: &UtsParams) -> UtsResult {
    let arena = StealArena::alloc(raw);
    arena.init(raw, raw.rank() == 0);
    raw.barrier_all();
    let state = Arc::new(LocalState::new(Arc::clone(raw), arena));
    let mut frontier = initial_frontier(raw, params);

    loop {
        if frontier.is_empty() {
            if state.idle_pass(&mut frontier) {
                break;
            }
            continue;
        }
        let batch: Vec<Node> = frontier.drain(..frontier.len().min(1024)).collect();
        let children: Arc<parking_lot::Mutex<Vec<Node>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        {
            let batch = Arc::new(batch);
            let children = Arc::clone(&children);
            let state2 = Arc::clone(&state);
            let params = *params;
            let b = Arc::clone(&batch);
            pool.parallel_for_dynamic(batch.len(), 16, move |i| {
                let node = b[i];
                let n = node.num_children(&params);
                let mut kids = Vec::with_capacity(n as usize);
                for c in 0..n {
                    kids.push(node.child(c));
                }
                state2.record(n);
                if !kids.is_empty() {
                    children.lock().extend(kids);
                }
            });
        }
        frontier.append(&mut children.lock());
        state.export_surplus(&mut frontier);
    }
    finish_run(&state)
}

// ---------------------------------------------------------------------
// Implementation B: OpenSHMEM + OpenMP Tasks (coarse taskwait)
// ---------------------------------------------------------------------

/// OpenSHMEM+OpenMP Tasks: per-node dynamic tasks, but a **coarse
/// `taskwait` on all pending tasks before every termination check and
/// load-balancing step** (paper §III-C1).
pub fn run_omp_tasks(raw: &Arc<RawShmem>, pool: &Arc<Pool>, params: &UtsParams) -> UtsResult {
    let arena = StealArena::alloc(raw);
    arena.init(raw, raw.rank() == 0);
    raw.barrier_all();
    let state = Arc::new(LocalState::new(Arc::clone(raw), arena));
    let mut frontier = initial_frontier(raw, params);

    loop {
        if frontier.is_empty() {
            if state.idle_pass(&mut frontier) {
                break;
            }
            continue;
        }
        // Spawn one task per frontier node...
        let group = pool.task_group();
        let children: Arc<parking_lot::Mutex<Vec<Node>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        for node in frontier.drain(..frontier.len().min(1024)) {
            let children = Arc::clone(&children);
            let state2 = Arc::clone(&state);
            let params = *params;
            group.spawn(move || {
                let n = node.num_children(&params);
                let mut kids = Vec::with_capacity(n as usize);
                for c in 0..n {
                    kids.push(node.child(c));
                }
                state2.record(n);
                if !kids.is_empty() {
                    children.lock().extend(kids);
                }
            });
        }
        // ...then wait on ALL of them before anything else can happen.
        group.wait();
        frontier.append(&mut children.lock());
        state.export_surplus(&mut frontier);
    }
    finish_run(&state)
}

// ---------------------------------------------------------------------
// Implementation C: HiPER / AsyncSHMEM
// ---------------------------------------------------------------------

/// AsyncSHMEM: recursive HiPER tasks expand the tree with fine-grain
/// work-stealing inside the rank; the surplus export happens from within
/// the task graph; termination arrives via `shmem_async_when`.
pub fn run_hiper(shmem: &Arc<ShmemModule>, params: &UtsParams) -> UtsResult {
    let raw = Arc::clone(shmem.raw());
    let arena = StealArena::alloc(&raw);
    arena.init(&raw, raw.rank() == 0);
    shmem.barrier_all();
    let state = Arc::new(LocalState::new(Arc::clone(&raw), arena));

    // Termination notification as a predicated task instead of polling.
    {
        let state2 = Arc::clone(&state);
        let done_off = state.arena.done.offset;
        shmem.async_when(done_off, Cmp::Eq, 1, move || {
            state2.done.store(true, Ordering::Release);
        });
    }

    let mut frontier = initial_frontier(&raw, params);
    loop {
        if frontier.is_empty() {
            if state.idle_pass(&mut frontier) {
                break;
            }
            continue;
        }
        // Expand the whole local subtree with recursive tasks; the finish
        // covers the recursion, not each node (fine-grain intra-rank
        // balancing via the work-stealing deques).
        let surplus: Arc<parking_lot::Mutex<Vec<Node>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let roots: Vec<Node> = std::mem::take(&mut frontier);
        api::finish(|| {
            spawn_expand(roots, *params, Arc::clone(&state), Arc::clone(&surplus));
        })
        .expect("no task panicked");
        // Export any surplus captured during expansion, then publish it.
        let mut captured = surplus.lock();
        if !captured.is_empty() {
            frontier.append(&mut captured);
        }
        drop(captured);
        state.export_surplus(&mut frontier);
    }
    finish_run(&state)
}

/// Chunked recursive task expansion: each task owns a private node stack
/// and expands depth-first; when the stack grows past a threshold it splits
/// half into a sibling task (stealable by other workers) and occasionally
/// redirects a slice to the surplus pool so *remote* thieves find work.
/// Chunking keeps per-node overhead near the sequential cost while the
/// splits provide fine-grain intra-rank balancing.
fn spawn_expand(
    mut stack: Vec<Node>,
    params: UtsParams,
    state: Arc<LocalState>,
    surplus: Arc<parking_lot::Mutex<Vec<Node>>>,
) {
    const SPLIT_AT: usize = 128;
    while let Some(node) = stack.pop() {
        let n = node.num_children(&params);
        state.record(n);
        for c in 0..n {
            stack.push(node.child(c));
        }
        if stack.len() > SPLIT_AT {
            let mut half = stack.split_off(stack.len() / 2);
            // Feed remote thieves first if the surplus pool is low.
            {
                let mut pool = surplus.lock();
                if pool.len() < SURPLUS_CAP / 2 {
                    let take = half.len().min(32);
                    pool.extend(half.drain(..take));
                }
            }
            if !half.is_empty() {
                let state = Arc::clone(&state);
                let surplus = Arc::clone(&surplus);
                api::async_(move || spawn_expand(half, params, state, surplus));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_netsim::{NetConfig, SpmdBuilder};
    use hiper_runtime::SchedulerModule;
    use hiper_shmem::ShmemWorld;

    fn tiny() -> UtsParams {
        UtsParams {
            seed: 7,
            b0: 2.0,
            root_children: 4,
            max_depth: 9,
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let params = tiny();
        let root = Node::root(&params);
        let child = root.child(2);
        assert_eq!(Node::unpack(&child.pack()), child);
    }

    #[test]
    fn tree_is_deterministic() {
        let params = tiny();
        let a = seq_count(&params);
        let b = seq_count(&params);
        assert_eq!(a, b);
        assert!(a > 10, "tree too small: {}", a);
        // Different seed, different tree (overwhelmingly).
        let other = seq_count(&UtsParams { seed: 8, ..params });
        assert_ne!(a, other);
    }

    #[test]
    fn branching_respects_depth_cutoff() {
        let params = tiny();
        let mut node = Node::root(&params);
        for _ in 0..params.max_depth {
            node = Node {
                depth: node.depth + 1,
                ..node
            };
        }
        assert_eq!(node.num_children(&params), 0);
    }

    fn check_impl(
        nranks: usize,
        run: impl Fn(&hiper_netsim::RankEnv, Arc<RawShmem>, Option<Arc<ShmemModule>>) -> UtsResult
            + Send
            + Sync
            + 'static,
        use_module: bool,
    ) {
        let params = tiny();
        let expected = seq_count(&params);
        let world = ShmemWorld::new(nranks, 1 << 21);
        let results = SpmdBuilder::new(nranks)
            .net(NetConfig::default())
            .workers_per_rank(2)
            .run(
                move |_r, t| {
                    if use_module {
                        let shmem = ShmemModule::new(world.clone(), t);
                        (
                            vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>],
                            (Arc::clone(shmem.raw()), Some(shmem)),
                        )
                    } else {
                        let raw = RawShmem::new(world.clone(), t);
                        (Vec::new(), (raw, None))
                    }
                },
                move |env, (raw, module)| run(&env, raw, module),
            );
        for r in &results {
            assert_eq!(r.global_count, expected, "global count mismatch");
        }
        let local_sum: u64 = results.iter().map(|r| r.local_count).sum();
        assert_eq!(local_sum, expected, "local counts must partition the tree");
    }

    #[test]
    fn omp_impl_counts_tree() {
        let params = tiny();
        check_impl(
            2,
            move |_env, raw, _m| {
                let pool = Pool::new(2);
                let r = run_omp(&raw, &pool, &params);
                pool.shutdown();
                r
            },
            false,
        );
    }

    #[test]
    fn omp_tasks_impl_counts_tree() {
        let params = tiny();
        check_impl(
            2,
            move |_env, raw, _m| {
                let pool = Pool::new(2);
                let r = run_omp_tasks(&raw, &pool, &params);
                pool.shutdown();
                r
            },
            false,
        );
    }

    #[test]
    fn hiper_impl_counts_tree() {
        let params = tiny();
        check_impl(
            3,
            move |_env, _raw, module| run_hiper(module.as_ref().unwrap(), &params),
            true,
        );
    }

    #[test]
    fn single_rank_all_impls_match_oracle() {
        let params = tiny();
        let expected = seq_count(&params);
        let world = ShmemWorld::new(1, 1 << 21);
        let results = SpmdBuilder::new(1)
            .net(NetConfig::instant())
            .workers_per_rank(2)
            .run(
                move |_r, t| {
                    let shmem = ShmemModule::new(world.clone(), t);
                    (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
                },
                move |_env, shmem| {
                    let pool = Pool::new(2);
                    let a = run_omp(shmem.raw(), &pool, &params).global_count;
                    let b = run_omp_tasks(shmem.raw(), &pool, &params).global_count;
                    let c = run_hiper(&shmem, &params).global_count;
                    pool.shutdown();
                    (a, b, c)
                },
            );
        assert_eq!(results[0], (expected, expected, expected));
    }
}
