//! The HiPER benchmark suite (paper §III).
//!
//! One module per benchmark, each containing the workload, a sequential
//! oracle / validator, the baseline implementations the paper compares
//! against, and the HiPER implementation:
//!
//! | module | paper exp. | modules used | baselines |
//! |---|---|---|---|
//! | [`isx`] | Fig 5, ISx weak scaling | OpenSHMEM | flat SHMEM, SHMEM+OMP |
//! | [`uts`] | Fig 7, UTS strong scaling | OpenSHMEM | SHMEM+OMP, SHMEM+OMP-Tasks |
//! | [`geo`] | Fig 6, GEO weak scaling | CUDA + MPI | blocking MPI+CUDA, MPI+OMP+CUDA |
//! | [`hpgmg`] | Fig 4, HPGMG-FV weak scaling | UPC++ + MPI | reference hybrid |
//! | [`graph500`] | §III-C2 | OpenSHMEM + MPI | manual-polling reference |
//!
//! The figure harnesses live in `src/bin/` (one binary per paper figure) and
//! print the same series the paper plots; `benches/` holds Criterion
//! micro-benchmarks backing the headline numbers (task overheads,
//! communication primitives, and two design ablations).

pub mod geo;
pub mod graph500;
pub mod hpgmg;
pub mod isx;
pub mod perfgate;
pub mod sha1;
pub mod supervised;
pub mod traceload;
pub mod util;
pub mod uts;
