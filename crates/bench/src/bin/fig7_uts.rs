//! Figure 7: UTS strong scaling — OpenSHMEM+OpenMP vs OpenSHMEM+OpenMP
//! Tasks vs AsyncSHMEM (HiPER).
//!
//! Strong scaling: one fixed unbalanced tree (a scaled-down stand-in for
//! T1XXL), counted by 1..N nodes. The HiPER version expands the tree with
//! fine-grain runtime tasks and takes termination via `shmem_async_when`;
//! the OpenMP-Tasks baseline must coarse-`taskwait` before every
//! load-balancing step (paper §III-C1).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin fig7_uts
//! env: HIPER_NODES_MAX (default 8), HIPER_UTS_DEPTH (default 13),
//!      HIPER_UTS_B0_X100 (default 200), HIPER_REPS (default 3)
//! ```

use std::sync::Arc;

use hiper_bench::util::{
    env_param, metrics_session, print_rank_stats, print_table, stats_enabled, summarize,
    trace_session, Timing,
};
use hiper_bench::uts::{self, UtsParams};
use hiper_forkjoin::Pool;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_shmem::{RawShmem, ShmemModule, ShmemWorld};

const CORES_PER_NODE: usize = 2;

#[derive(Clone, Copy, PartialEq)]
enum Impl {
    Omp,
    OmpTasks,
    Hiper,
}

fn run_impl(which: Impl, nodes: usize, params: UtsParams, expected: u64, reps: usize) -> Timing {
    let world = ShmemWorld::new(nodes, 1 << 22);
    let samples = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(CORES_PER_NODE)
        .run(
            move |_r, t| {
                let shmem = ShmemModule::new(world.clone(), t);
                (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
            },
            move |env, shmem| {
                let raw: Arc<RawShmem> = Arc::clone(shmem.raw());
                let pool = if which == Impl::Hiper {
                    None
                } else {
                    Some(Pool::new(CORES_PER_NODE))
                };
                let watermark = raw.alloc_watermark();
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    shmem.barrier_all();
                    raw.reset_alloc(watermark);
                    shmem.barrier_all();
                    let t0 = std::time::Instant::now();
                    let result = match which {
                        Impl::Omp => uts::run_omp(&raw, pool.as_ref().unwrap(), &params),
                        Impl::OmpTasks => uts::run_omp_tasks(&raw, pool.as_ref().unwrap(), &params),
                        Impl::Hiper => uts::run_hiper(&shmem, &params),
                    };
                    shmem.barrier_all();
                    let dt = t0.elapsed().as_secs_f64();
                    assert_eq!(result.global_count, expected, "tree count mismatch");
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                if let Some(pool) = pool {
                    pool.shutdown();
                }
                if stats_enabled() {
                    print_rank_stats(&format!("uts rank {}", env.rank), &env.runtime);
                }
                samples
            },
        );
    summarize(&samples[0])
}

fn main() {
    let _trace = trace_session();
    let _metrics = metrics_session();
    let nodes_max = env_param("HIPER_NODES_MAX", 8);
    let reps = env_param("HIPER_REPS", 3);
    let params = UtsParams {
        seed: 19,
        b0: env_param("HIPER_UTS_B0_X100", 200) as f64 / 100.0,
        root_children: 4,
        max_depth: env_param("HIPER_UTS_DEPTH", 13) as u32,
    };
    let expected = uts::seq_count(&params);
    println!("UTS strong scaling (paper Fig. 7)");
    println!(
        "tree: b0={}, depth={}, nodes={}, reps={}",
        params.b0, params.max_depth, expected, reps
    );

    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= nodes_max {
        let omp = run_impl(Impl::Omp, nodes, params, expected, reps);
        let tasks = run_impl(Impl::OmpTasks, nodes, params, expected, reps);
        let hiper = run_impl(Impl::Hiper, nodes, params, expected, reps);
        rows.push((nodes, vec![omp, tasks, hiper]));
        nodes *= 2;
    }
    print_table(
        "UTS total time (lower is better)",
        "nodes",
        &["SHMEM+OMP", "SHMEM+OMP Tasks", "AsyncSHMEM (HiPER)"],
        &rows,
    );

    // Qualitative check from the paper: HiPER at the largest scale should
    // not be slower than the OMP-Tasks baseline (coarse synchronization).
    if let Some((n, last)) = rows.last() {
        println!(
            "\nat {} nodes: omp {:.1} ms, omp-tasks {:.1} ms, hiper {:.1} ms",
            n,
            last[0].mean * 1e3,
            last[1].mean * 1e3,
            last[2].mean * 1e3
        );
    }
}
