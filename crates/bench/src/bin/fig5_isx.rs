//! Figure 5: ISx weak scaling — Flat OpenSHMEM vs OpenSHMEM+OpenMP vs HiPER.
//!
//! Weak scaling: the number of keys per *node* is fixed while nodes grow.
//! As in the paper, the flat configuration runs one single-threaded PE per
//! "core" (2 per node here), so it has twice the ranks of the hybrids — and
//! its O(P²) all-to-all is what degrades at scale (paper §III-B).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin fig5_isx
//! env: HIPER_NODES_MAX (default 8), HIPER_KEYS_PER_NODE (default 65536),
//!      HIPER_REPS (default 3)
//! ```

use std::sync::Arc;

use hiper_bench::isx::{self, IsxParams};
use hiper_bench::util::{
    env_param, metrics_session, print_rank_stats, print_table, stats_enabled, summarize,
    trace_session, Timing,
};
use hiper_forkjoin::Pool;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_shmem::{RawShmem, ShmemModule, ShmemWorld};

const CORES_PER_NODE: usize = 2;

fn time_on_rank0(samples: Vec<Vec<f64>>) -> Timing {
    summarize(&samples[0])
}

fn run_flat(nodes: usize, keys_per_node: usize, reps: usize) -> Timing {
    let ranks = nodes * CORES_PER_NODE;
    let params = IsxParams {
        keys_per_rank: keys_per_node / CORES_PER_NODE,
        ..Default::default()
    };
    let world = ShmemWorld::new(ranks, heap_bytes(params.keys_per_rank));
    let samples = SpmdBuilder::new(ranks)
        // Flat packs CORES_PER_NODE PEs onto each node: same-node PEs talk
        // through shared memory (intra-node latency), which is why flat is
        // competitive at small scale in the paper.
        .net(NetConfig {
            ranks_per_node: CORES_PER_NODE,
            ..NetConfig::default()
        })
        .workers_per_rank(1)
        .run(
            move |_r, t| (Vec::new(), RawShmem::new(world.clone(), t)),
            move |_env, raw| {
                let watermark = raw.alloc_watermark();
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    raw.barrier_all();
                    raw.reset_alloc(watermark);
                    raw.barrier_all();
                    let t0 = std::time::Instant::now();
                    let result = isx::run_flat(&raw, &params);
                    raw.barrier_all();
                    let dt = t0.elapsed().as_secs_f64();
                    assert!(isx::verify(&raw, &params, &result));
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                samples
            },
        );
    time_on_rank0(samples)
}

fn run_hybrid(nodes: usize, keys_per_node: usize, reps: usize) -> Timing {
    let params = IsxParams {
        keys_per_rank: keys_per_node,
        ..Default::default()
    };
    let world = ShmemWorld::new(nodes, heap_bytes(params.keys_per_rank));
    let samples = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(1)
        .run(
            move |_r, t| {
                (
                    Vec::new(),
                    (RawShmem::new(world.clone(), t), Pool::new(CORES_PER_NODE)),
                )
            },
            move |_env, (raw, pool)| {
                let watermark = raw.alloc_watermark();
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    raw.barrier_all();
                    raw.reset_alloc(watermark);
                    raw.barrier_all();
                    let t0 = std::time::Instant::now();
                    let result = isx::run_hybrid_omp(&raw, &pool, &params);
                    raw.barrier_all();
                    let dt = t0.elapsed().as_secs_f64();
                    assert!(isx::verify(&raw, &params, &result));
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                pool.shutdown();
                samples
            },
        );
    time_on_rank0(samples)
}

fn run_hiper(nodes: usize, keys_per_node: usize, reps: usize) -> Timing {
    let params = IsxParams {
        keys_per_rank: keys_per_node,
        ..Default::default()
    };
    let world = ShmemWorld::new(nodes, heap_bytes(params.keys_per_rank));
    let samples = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(CORES_PER_NODE)
        .run(
            move |_r, t| {
                let shmem = ShmemModule::new(world.clone(), t);
                (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
            },
            move |env, shmem| {
                let raw = Arc::clone(shmem.raw());
                let watermark = raw.alloc_watermark();
                let mut samples = Vec::new();
                for rep in 0..reps + 1 {
                    shmem.barrier_all();
                    raw.reset_alloc(watermark);
                    shmem.barrier_all();
                    let t0 = std::time::Instant::now();
                    let result = isx::run_hiper(&shmem, &params);
                    shmem.barrier_all();
                    let dt = t0.elapsed().as_secs_f64();
                    assert!(isx::verify(&raw, &params, &result));
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                if stats_enabled() {
                    print_rank_stats(&format!("isx-hiper rank {}", env.rank), &env.runtime);
                }
                samples
            },
        );
    time_on_rank0(samples)
}

fn heap_bytes(keys_per_rank: usize) -> usize {
    // recv buffer (2x) + metadata, per rep (allocator is reset between
    // reps).
    (keys_per_rank * 2 * 8 + (1 << 16)).next_power_of_two()
}

fn main() {
    let _trace = trace_session();
    let _metrics = metrics_session();
    let nodes_max = env_param("HIPER_NODES_MAX", 8);
    let keys_per_node = env_param("HIPER_KEYS_PER_NODE", 1 << 16);
    let reps = env_param("HIPER_REPS", 3);

    println!("ISx weak scaling (paper Fig. 5)");
    println!(
        "keys/node = {}, cores/node = {}, reps = {}",
        keys_per_node, CORES_PER_NODE, reps
    );

    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= nodes_max {
        let flat = run_flat(nodes, keys_per_node, reps);
        let hybrid = run_hybrid(nodes, keys_per_node, reps);
        let hiper = run_hiper(nodes, keys_per_node, reps);
        rows.push((nodes, vec![flat, hybrid, hiper]));
        nodes *= 2;
    }
    print_table(
        "ISx total time (lower is better)",
        "nodes",
        &["Flat OpenSHMEM", "OpenSHMEM+OMP", "HiPER"],
        &rows,
    );

    // The paper's qualitative claims, asserted on our data:
    // flat wins at 1 node, degrades relative to the hybrids at the largest
    // scale (O(P^2) all-to-all with twice the ranks).
    if rows.len() >= 2 {
        let first = &rows[0].1;
        let last = &rows[rows.len() - 1].1;
        let flat_growth = last[0].mean / first[0].mean;
        let hiper_growth = last[2].mean / first[2].mean;
        println!(
            "\nscaling degradation  flat x{:.2}  hiper x{:.2}  (flat should degrade faster)",
            flat_growth, hiper_growth
        );
    }
}
