//! Validates a Chrome trace-event JSON file produced by `hiper-trace`.
//!
//! Checks the structural invariants a timeline viewer relies on:
//!
//! * the document is an object with a `traceEvents` array;
//! * every event has a string `name`, a one-char `ph`, and numeric
//!   `pid`/`tid` (metadata `M` events may omit `ts`, all others need it);
//! * per (pid, tid) track, timestamps are monotone non-decreasing in file
//!   order (the exporter globally sorts by time);
//! * per track, `B`/`E` duration events pair up with matching names and end
//!   balanced — unless that track recorded a `dropped events` marker, in
//!   which case unbalanced spans are reported but tolerated;
//! * task lifecycle correlation: every `task` begin span carries a task id
//!   that some `spawn` instant announced — an orphan begin means spawn
//!   events were lost (or the exporter broke attribution). Orphans are an
//!   error on a lossless trace and reported counts on a lossy one;
//! * causal message edges: every `msg_deliver` instant names a message id
//!   some `msg_send` announced with the same src/dst link (orphans are an
//!   error on a lossless trace), no message id is sent twice, and each
//!   delivery lands no earlier than its send plus the modeled delay the
//!   paired `NetSend` span advertised (`delay_ns` arg, matched by link and
//!   shared timestamp) — jitter and FIFO clamping may only postpone it;
//! * supervised recovery: per rank, `rank_down` / `rank_restored` instants
//!   must alternate starting with a down (a trailing unmatched down is
//!   tolerated — the trace may end mid-outage), restored transport epochs
//!   must be nonzero and never go backward (equal epochs are allowed: one
//!   traced process may run several independent clusters, each restarting
//!   its own epoch sequence), and no `msg_deliver` may land on a rank
//!   strictly inside one of its (down, restored) blackout intervals — the
//!   delivery engine severs traffic to a down rank, so a delivery there
//!   means the severing (or the event order) is broken.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin trace_check -- out.json
//! ```
//!
//! Exits 0 on a valid trace, 1 on any violation, 2 on usage/IO errors.

use std::collections::{BTreeMap, BTreeSet};

use hiper_platform::json::Json;

/// Task-DAG correlation counters across the whole trace.
#[derive(Default)]
struct TaskDag {
    /// Distinct task ids announced by `spawn` instants.
    spawned: BTreeSet<u64>,
    /// Distinct task ids that began a `task` span.
    begun: BTreeSet<u64>,
}

impl TaskDag {
    /// Begun task ids that were never spawned (attribution holes).
    fn orphan_begins(&self) -> Vec<u64> {
        self.begun.difference(&self.spawned).copied().collect()
    }

    /// Spawned task ids that never began (lost begins, or the trace was cut
    /// before they ran).
    fn unbegun_spawns(&self) -> usize {
        self.spawned.difference(&self.begun).count()
    }
}

/// One `msg_send` endpoint, keyed by message id.
struct MsgSendEv {
    ts: f64,
    src: u64,
    dst: u64,
}

/// Causal message-edge correlation across the whole trace.
#[derive(Default)]
struct MsgEdges {
    /// `msg_send` instants by message id.
    sends: BTreeMap<u64, MsgSendEv>,
    /// `msg_deliver` instants: (message id, ts, src, dst).
    delivers: Vec<(u64, f64, u64, u64)>,
    /// Modeled one-way delay (us) per `NetSend`, keyed by (src, dst,
    /// ts bit pattern) — the causal `msg_send` shares the timestamp.
    net_delays: BTreeMap<(u64, u64, u64), f64>,
    /// Delivers whose send is missing.
    orphan_delivers: u64,
}

/// Timestamp slack (us) for the modeled-delay check: export renders
/// microseconds from nanosecond stamps, so allow sub-us rounding.
const TS_SLACK_US: f64 = 0.002;

impl MsgEdges {
    /// Cross-checks delivers against sends and the modeled wire delay;
    /// `lossy` relaxes orphan delivers (their sends wrapped out of the
    /// ring) but never the delay or link invariants.
    fn validate(&mut self, lossy: bool, errors: &mut Vec<String>) {
        for &(id, ts, src, dst) in &self.delivers {
            let send = match self.sends.get(&id) {
                Some(s) => s,
                None => {
                    self.orphan_delivers += 1;
                    if !lossy {
                        fail(
                            errors,
                            format!(
                                "msg_deliver {} ({}->{}) has no matching msg_send \
                                 on a lossless trace",
                                id, src, dst
                            ),
                        );
                    }
                    continue;
                }
            };
            if (send.src, send.dst) != (src, dst) {
                fail(
                    errors,
                    format!(
                        "msg {} delivered on link {}->{} but sent on {}->{}",
                        id, src, dst, send.src, send.dst
                    ),
                );
            }
            if ts + TS_SLACK_US < send.ts {
                fail(
                    errors,
                    format!(
                        "msg {} delivered at {} us before its send at {} us",
                        id, ts, send.ts
                    ),
                );
            }
            // The paired NetSend (same link, same stamp) advertises the
            // modeled delay; jitter and FIFO ordering only postpone
            // delivery beyond it, never hasten it.
            if let Some(delay) = self
                .net_delays
                .get(&(send.src, send.dst, send.ts.to_bits()))
            {
                if ts + TS_SLACK_US < send.ts + delay {
                    fail(
                        errors,
                        format!(
                            "msg {} delivered at {} us, earlier than send {} us + \
                             modeled delay {} us",
                            id, ts, send.ts, delay
                        ),
                    );
                }
            }
        }
    }
}

/// Supervised-recovery correlation: `rank_down`/`rank_restored` pairing,
/// epoch monotonicity, and delivery blackout during outages.
#[derive(Default)]
struct Recovery {
    /// Per rank, lifecycle instants in file (= time) order:
    /// (ts, true = restored, epoch).
    lifecycle: BTreeMap<u64, Vec<(f64, bool, u64)>>,
    /// `task_retry` instants seen.
    retries: u64,
    /// Completed (down, restored) blackout intervals per rank.
    intervals: BTreeMap<u64, Vec<(f64, f64)>>,
}

impl Recovery {
    fn downs(&self) -> usize {
        self.lifecycle
            .values()
            .map(|v| v.iter().filter(|(_, up, _)| !up).count())
            .sum()
    }

    fn restores(&self) -> usize {
        self.lifecycle
            .values()
            .map(|v| v.iter().filter(|(_, up, _)| *up).count())
            .sum()
    }

    /// Checks alternation and epoch order, then cross-checks delivers
    /// against the blackout intervals. Pairing holes are tolerated on a
    /// lossy trace (the instants may have wrapped out of the ring), but a
    /// delivery inside a *witnessed* interval is always an error.
    fn validate(&mut self, edges: &MsgEdges, lossy: bool, errors: &mut Vec<String>) {
        for (&rank, events) in &self.lifecycle {
            let mut open: Option<f64> = None;
            let mut last_epoch: Option<u64> = None;
            for &(ts, restored, epoch) in events {
                match (restored, open) {
                    (false, None) => open = Some(ts),
                    (false, Some(_)) => {
                        if !lossy {
                            fail(
                                errors,
                                format!("rank {}: rank_down at {} us while already down", rank, ts),
                            );
                        }
                        open = Some(ts);
                    }
                    (true, Some(down_ts)) => {
                        self.intervals.entry(rank).or_default().push((down_ts, ts));
                        open = None;
                    }
                    (true, None) => {
                        if !lossy {
                            fail(
                                errors,
                                format!(
                                    "rank {}: rank_restored at {} us with no prior rank_down",
                                    rank, ts
                                ),
                            );
                        }
                    }
                }
                if restored {
                    if epoch == 0 {
                        fail(
                            errors,
                            format!(
                                "rank {}: restored at {} us with epoch 0 (no renegotiation)",
                                rank, ts
                            ),
                        );
                    }
                    // Equal epochs are fine — a traced process may run
                    // several independent clusters, each restarting its
                    // own epoch sequence — but going backward is not.
                    if let Some(prev) = last_epoch {
                        if epoch < prev {
                            fail(
                                errors,
                                format!(
                                    "rank {}: restored epoch {} below previous epoch {}",
                                    rank, epoch, prev
                                ),
                            );
                        }
                    }
                    last_epoch = Some(epoch);
                }
            }
            // A trailing unmatched down is fine: the trace may simply end
            // while the rank is still being recovered.
        }
        for &(id, ts, _, dst) in &edges.delivers {
            let Some(ivals) = self.intervals.get(&dst) else {
                continue;
            };
            for &(down, up) in ivals {
                if ts > down + TS_SLACK_US && ts < up - TS_SLACK_US {
                    fail(
                        errors,
                        format!(
                            "msg {} delivered to rank {} at {} us inside its \
                             blackout [{} us, {} us]",
                            id, dst, ts, down, up
                        ),
                    );
                }
            }
        }
    }
}

struct Track {
    last_ts: f64,
    /// Open B spans (names), in nesting order.
    stack: Vec<String>,
    /// This track lost ring events; unbalanced spans are expected.
    lossy: bool,
    events: u64,
    spans: u64,
}

impl Default for Track {
    fn default() -> Track {
        Track {
            last_ts: f64::NEG_INFINITY,
            stack: Vec::new(),
            lossy: false,
            events: 0,
            spans: 0,
        }
    }
}

fn fail(errors: &mut Vec<String>, msg: String) {
    if errors.len() < 20 {
        errors.push(msg);
    }
}

/// Everything `check` learns: per-track summary, task-DAG correlation,
/// message-edge correlation, recovery correlation, and accumulated errors.
type CheckReport = (
    BTreeMap<(u64, u64), Track>,
    TaskDag,
    MsgEdges,
    Recovery,
    Vec<String>,
);

/// Validates the parsed document; returns (per-track summary, task-DAG
/// correlation, message-edge correlation, recovery correlation, errors).
fn check(doc: &Json) -> CheckReport {
    let mut errors = Vec::new();
    let mut tracks: BTreeMap<(u64, u64), Track> = BTreeMap::new();
    let mut dag = TaskDag::default();
    let mut edges = MsgEdges::default();
    let mut recovery = Recovery::default();
    let events = match doc.get("traceEvents").and_then(Json::as_array) {
        Some(a) => a,
        None => {
            fail(&mut errors, "no traceEvents array".into());
            return (tracks, dag, edges, recovery, errors);
        }
    };
    for (i, ev) in events.iter().enumerate() {
        let name = match ev.get("name").and_then(Json::as_str) {
            Some(n) => n.to_string(),
            None => {
                fail(&mut errors, format!("event {} has no name", i));
                continue;
            }
        };
        let ph = match ev.get("ph").and_then(Json::as_str) {
            Some(p) if p.len() == 1 => p.chars().next().unwrap(),
            _ => {
                fail(&mut errors, format!("event {} ({}) has bad ph", i, name));
                continue;
            }
        };
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(-1.0);
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0);
        if pid < 0.0 {
            fail(&mut errors, format!("event {} ({}) has no pid", i, name));
            continue;
        }
        if ph == 'M' {
            continue; // metadata carries no timestamp
        }
        let ts = match ev.get("ts").and_then(Json::as_f64) {
            Some(t) => t,
            None => {
                fail(&mut errors, format!("event {} ({}) has no ts", i, name));
                continue;
            }
        };
        let track = tracks.entry((pid as u64, tid as u64)).or_default();
        track.events += 1;
        if ts < track.last_ts {
            fail(
                &mut errors,
                format!(
                    "event {} ({}) goes back in time on pid {} tid {}: {} < {}",
                    i, name, pid, tid, ts, track.last_ts
                ),
            );
        }
        track.last_ts = ts;
        if name == "dropped events" {
            track.lossy = true;
        }
        let task_arg = ev
            .get("args")
            .and_then(|a| a.get("task"))
            .and_then(Json::as_f64)
            .map(|t| t as u64);
        if let Some(task) = task_arg {
            if name == "spawn" {
                dag.spawned.insert(task);
            } else if name == "task" && ph == 'B' {
                dag.begun.insert(task);
            }
        }
        let num_arg = |key: &str| {
            ev.get("args")
                .and_then(|a| a.get(key))
                .and_then(Json::as_f64)
        };
        if name == "msg_send" || name == "msg_deliver" {
            match (num_arg("msg"), num_arg("src"), num_arg("dst")) {
                (Some(id), Some(src), Some(dst)) => {
                    let (id, src, dst) = (id as u64, src as u64, dst as u64);
                    if name == "msg_send" {
                        if edges.sends.insert(id, MsgSendEv { ts, src, dst }).is_some() {
                            fail(&mut errors, format!("msg id {} sent twice", id));
                        }
                    } else {
                        edges.delivers.push((id, ts, src, dst));
                    }
                }
                _ => fail(
                    &mut errors,
                    format!("event {} ({}) lacks msg/src/dst args", i, name),
                ),
            }
        } else if name == "rank_down" || name == "rank_restored" {
            match num_arg("rank") {
                Some(rank) => {
                    let restored = name == "rank_restored";
                    let epoch = num_arg("epoch").map(|e| e as u64).unwrap_or(0);
                    if restored && num_arg("epoch").is_none() {
                        fail(
                            &mut errors,
                            format!("event {} (rank_restored) lacks epoch arg", i),
                        );
                    }
                    recovery
                        .lifecycle
                        .entry(rank as u64)
                        .or_default()
                        .push((ts, restored, epoch));
                }
                None => fail(
                    &mut errors,
                    format!("event {} ({}) lacks rank arg", i, name),
                ),
            }
        } else if name == "task_retry" {
            recovery.retries += 1;
        } else if ph == 'X' {
            // NetSend wire span: remember its modeled delay so delivers
            // can be checked against send + delay.
            if let (Some(src), Some(dst), Some(delay)) =
                (num_arg("src"), num_arg("dst"), num_arg("delay_ns"))
            {
                edges
                    .net_delays
                    .insert((src as u64, dst as u64, ts.to_bits()), delay / 1000.0);
            }
        }
        match ph {
            'B' => track.stack.push(name),
            'E' => match track.stack.pop() {
                Some(open) => {
                    track.spans += 1;
                    if open != name {
                        fail(
                            &mut errors,
                            format!(
                                "event {}: E \"{}\" closes B \"{}\" on pid {} tid {}",
                                i, name, open, pid, tid
                            ),
                        );
                    }
                }
                None if track.lossy => {}
                None => fail(
                    &mut errors,
                    format!(
                        "event {}: E \"{}\" with no open B on pid {} tid {}",
                        i, name, pid, tid
                    ),
                ),
            },
            'X' | 'i' | 'I' => {}
            other => fail(&mut errors, format!("event {}: unknown ph '{}'", i, other)),
        }
    }
    for ((pid, tid), track) in &tracks {
        if !track.stack.is_empty() && !track.lossy {
            fail(
                &mut errors,
                format!(
                    "pid {} tid {}: {} unclosed span(s), innermost \"{}\"",
                    pid,
                    tid,
                    track.stack.len(),
                    track.stack.last().unwrap()
                ),
            );
        }
    }
    let lossy = tracks.values().any(|t| t.lossy);
    edges.validate(lossy, &mut errors);
    recovery.validate(&edges, lossy, &mut errors);
    let orphans = dag.orphan_begins();
    if !orphans.is_empty() && !tracks.values().any(|t| t.lossy) {
        let sample: Vec<String> = orphans.iter().take(5).map(|t| t.to_string()).collect();
        fail(
            &mut errors,
            format!(
                "{} task begin(s) with no matching spawn on a lossless trace \
                 (e.g. task {})",
                orphans.len(),
                sample.join(", task ")
            ),
        );
    }
    (tracks, dag, edges, recovery, errors)
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_check <trace.json>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {}: {}", path, e);
            std::process::exit(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_check: {} is not valid JSON: {:?}", path, e);
            std::process::exit(1);
        }
    };
    let (tracks, dag, edges, recovery, errors) = check(&doc);
    let events: u64 = tracks.values().map(|t| t.events).sum();
    let spans: u64 = tracks.values().map(|t| t.spans).sum();
    println!(
        "{}: {} events, {} closed spans, {} tracks",
        path,
        events,
        spans,
        tracks.len()
    );
    println!(
        "  task DAG: {} spawned, {} began, {} orphan begin(s), {} spawn(s) never began",
        dag.spawned.len(),
        dag.begun.len(),
        dag.orphan_begins().len(),
        dag.unbegun_spawns()
    );
    println!(
        "  msg edges: {} sent, {} delivered, {} orphan deliver(s)",
        edges.sends.len(),
        edges.delivers.len(),
        edges.orphan_delivers
    );
    if recovery.downs() + recovery.restores() + recovery.retries as usize > 0 {
        println!(
            "  recovery: {} rank_down, {} rank_restored, {} blackout interval(s), \
             {} task retry(s)",
            recovery.downs(),
            recovery.restores(),
            recovery.intervals.values().map(Vec::len).sum::<usize>(),
            recovery.retries
        );
    }
    for ((pid, tid), t) in &tracks {
        println!(
            "  pid {} tid {}: {} events, {} spans{}",
            pid,
            tid,
            t.events,
            t.spans,
            if t.lossy { " (lossy)" } else { "" }
        );
    }
    if errors.is_empty() {
        println!("OK");
    } else {
        for e in &errors {
            eprintln!("ERROR: {}", e);
        }
        std::process::exit(1);
    }
}
