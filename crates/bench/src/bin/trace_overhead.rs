//! Measures what tracing costs: the spawn-heavy fanout workload (the same
//! producer/consumer pattern as the `task_overhead` bench) run with tracing
//! disabled and enabled, plus the raw per-emit cost, written to
//! `BENCH_trace_overhead.json`.
//!
//! The disabled numbers are the ones that matter for the "zero cost when
//! off" claim: every instrumentation site is one relaxed atomic load when
//! the flag is clear, so the disabled median must sit within noise of the
//! uninstrumented baseline (`BENCH_sched_hotpath.json`).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin trace_overhead -- [out.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hiper_platform::autogen;
use hiper_runtime::{api, Runtime};
use hiper_trace::EventKind;

/// 8 producers each spawning 1000 tiny consumers (hammers the spawn, wake
/// and steal paths — the hottest instrumented code).
fn fanout(rt: &Runtime) -> u64 {
    let acc = Arc::new(AtomicU64::new(0));
    let a = Arc::clone(&acc);
    rt.block_on(move || {
        api::finish(|| {
            for _ in 0..8 {
                let a = Arc::clone(&a);
                api::async_(move || {
                    for _ in 0..1000 {
                        let a = Arc::clone(&a);
                        api::async_(move || {
                            a.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        })
        .expect("no task panicked");
    });
    acc.load(Ordering::Relaxed)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_fanout(rt: &Runtime, warmup: usize, reps: usize) -> (f64, f64, f64) {
    for _ in 0..warmup {
        assert_eq!(fanout(rt), 8000);
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            fanout(rt);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let med = median(&mut samples);
    (samples[0], med, samples[samples.len() - 1])
}

/// ns per call of `emit` (or its disabled-path check) over `n` calls.
fn emit_cost(n: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..n {
        hiper_trace::emit(EventKind::Pop, i, 0, 0);
    }
    t0.elapsed().as_secs_f64() * 1e9 / n as f64
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace_overhead.json".to_string());
    let warmup = hiper_bench::util::env_param("HIPER_WARMUP", 5);
    let reps = hiper_bench::util::env_param("HIPER_REPS", 31);

    let rt = Runtime::new(autogen::smp(4));

    hiper_trace::set_enabled(false);
    let disabled_emit_ns = emit_cost(10_000_000);
    let (dis_min, dis_med, dis_max) = time_fanout(&rt, warmup, reps);

    hiper_trace::set_enabled(true);
    let enabled_emit_ns = emit_cost(10_000_000);
    let (en_min, en_med, en_max) = time_fanout(&rt, warmup, reps);
    hiper_trace::set_enabled(false);
    let data = hiper_trace::drain();
    let events = data.len();
    let dropped = data.dropped();

    rt.shutdown();

    let overhead_pct = (en_med / dis_med - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"workload\": \"fanout_8x1000_producer_consumer\",\n  \"workers\": 4,\n  \"reps\": {reps},\n  \"disabled\": {{ \"min_ms\": {dis_min:.4}, \"median_ms\": {dis_med:.4}, \"max_ms\": {dis_max:.4}, \"emit_ns\": {disabled_emit_ns:.3} }},\n  \"enabled\": {{ \"min_ms\": {en_min:.4}, \"median_ms\": {en_med:.4}, \"max_ms\": {en_max:.4}, \"emit_ns\": {enabled_emit_ns:.3}, \"events_drained\": {events}, \"events_dropped\": {dropped} }},\n  \"enabled_over_disabled_pct\": {overhead_pct:.2}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write results");
    print!("{}", json);
    println!("wrote {}", out);
}
