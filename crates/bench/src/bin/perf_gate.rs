//! The CI performance regression gate: runs the canonical workloads
//! (scheduler fanout, MPI ping-pong, ISx, spawn churn, message churn)
//! `HIPER_REPS` times each, writes the fresh medians + IQRs *and raw per-rep samples* to
//! `BENCH_perf_gate.json`, and compares them against the checked-in
//! baseline with the noise-aware rule from [`hiper_bench::perfgate`].
//!
//! ```text
//! cargo run --release -p hiper-bench --bin perf_gate
//! cargo run --release -p hiper-bench --bin perf_gate -- --update-baseline
//! ```
//!
//! Flags:
//!
//! * `--baseline FILE` — baseline to gate against (default
//!   `configs/perf_gate_baseline.json`)
//! * `--out FILE` — where to write the fresh results (default
//!   `BENCH_perf_gate.json`)
//! * `--update-baseline` — also overwrite the baseline file with the fresh
//!   results AND record per-benchmark baseline *profiles* (compact traced
//!   runs, see `--trace-dir`) for later regression attribution (run on a
//!   quiet machine, then commit)
//! * `--trace-dir DIR` — where baseline profiles live (default
//!   `configs/perf_gate_traces`)
//! * `--attribute BENCH` — skip the gate entirely: run one traced rep of
//!   BENCH, diff it against the *stored* baseline profile, and write
//!   `ATTRIBUTION_<bench>.md` / `.json` next to `--out`. Used to document
//!   an intentional perf shift (improvement or regression) against the old
//!   baseline *before* `--update-baseline` overwrites the profiles.
//! * `HIPER_REPS` — timed reps per workload (default 7)
//! * `HIPER_GATE_SLACK_PCT` / `HIPER_GATE_IQR_MULT` — tuning knobs
//! * `HIPER_GATE_ATTRIBUTION=0` — skip profile recording and failure
//!   attribution entirely (used by hermetic tests)
//!
//! On gate failure each regressed benchmark is automatically re-run once
//! under tracing and diffed against its stored baseline profile; the
//! ranked attribution lands in `ATTRIBUTION_<bench>.md` / `.json` next to
//! `--out`, and the top contributor is echoed to stderr.
//!
//! Exits 0 when every metric holds, 1 on any regression, 2 on usage/IO
//! errors. A missing baseline file is exit 2 with a hint to run
//! `--update-baseline` — CI must never silently pass because the baseline
//! vanished.

use hiper_bench::perfgate::{
    attribute_regression, compare, gate_json_with_samples, parse_gate_json,
    record_baseline_profiles, run_all_samples, summarize_ms, DEFAULT_IQR_MULT, DEFAULT_SLACK_PCT,
};
use hiper_bench::util::env_param;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{}=", flag);
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&eq).map(str::to_string))
        })
}

/// Runs one traced rep of `bench`, diffs it against the stored baseline
/// profile, and writes `ATTRIBUTION_<bench>.{md,json}` into `out_dir`.
/// Echoes the top contributor to stderr. Returns false on any failure.
fn write_attribution(bench: &str, trace_dir: &std::path::Path, out_dir: &std::path::Path) -> bool {
    match attribute_regression(bench, trace_dir, 10) {
        Ok(att) => {
            let md = out_dir.join(format!("ATTRIBUTION_{}.md", bench));
            let js = out_dir.join(format!("ATTRIBUTION_{}.json", bench));
            let mut ok = true;
            for (path, body) in [(&md, &att.markdown), (&js, &att.json)] {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("perf_gate: cannot write {}: {}", path.display(), e);
                    ok = false;
                }
            }
            if ok {
                eprintln!("perf_gate: attribution for {} -> {}", bench, md.display());
            }
            if let Some(top) = att.diff.ranked.first() {
                eprintln!(
                    "perf_gate: {} top contributor: [{}] {} ({:+} ns, {:.0}% of delta, {})",
                    bench,
                    top.category,
                    top.name,
                    top.delta_ns,
                    100.0 * top.share,
                    top.location
                );
            }
            ok
        }
        Err(e) => {
            eprintln!("perf_gate: attribution for {} failed: {}", bench, e);
            false
        }
    }
}

/// The directory attribution artifacts land in: next to `--out`, so CI
/// uploads them with the gate results.
fn artifact_dir(out_path: &str) -> std::path::PathBuf {
    std::path::Path::new(out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."))
        .to_path_buf()
}

fn main() {
    // Attribution reps run traced; give the rings room so the profile is
    // not PARTIAL. Parsed once at ring-registry init, so set it before any
    // runtime spins up (respecting an explicit override).
    if std::env::var("HIPER_TRACE_BUF").is_err() {
        std::env::set_var("HIPER_TRACE_BUF", "262144");
    }
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "configs/perf_gate_baseline.json".into());
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_perf_gate.json".into());
    let trace_dir = std::path::PathBuf::from(
        arg_value(&args, "--trace-dir").unwrap_or_else(|| "configs/perf_gate_traces".into()),
    );
    let update_baseline = args.iter().any(|a| a == "--update-baseline");
    let reps = env_param("HIPER_REPS", 7);
    let slack_pct = env_f64("HIPER_GATE_SLACK_PCT", DEFAULT_SLACK_PCT);
    let iqr_mult = env_f64("HIPER_GATE_IQR_MULT", DEFAULT_IQR_MULT);
    let attribution_on =
        !std::env::var("HIPER_GATE_ATTRIBUTION").is_ok_and(|v| v == "0" || v.is_empty());

    let _metrics = hiper_bench::util::metrics_session();

    if let Some(bench) = arg_value(&args, "--attribute") {
        // Forced attribution: no sampling, no gate — one traced rep diffed
        // against whatever profile is currently stored. Run this before
        // --update-baseline to capture the before/after delta of an
        // intentional change.
        std::process::exit(
            if write_attribution(&bench, &trace_dir, &artifact_dir(&out_path)) {
                0
            } else {
                2
            },
        );
    }

    eprintln!(
        "perf_gate: {} reps/workload, slack {:.1}%, {}x IQR noise allowance",
        reps, slack_pct, iqr_mult
    );
    let raw = run_all_samples(reps);
    let current: std::collections::BTreeMap<_, _> = raw
        .iter()
        .map(|(name, samples)| (name.clone(), summarize_ms(samples.clone())))
        .collect();
    let fresh = gate_json_with_samples(&raw);
    if let Err(e) = std::fs::write(&out_path, &fresh) {
        eprintln!("perf_gate: cannot write {}: {}", out_path, e);
        std::process::exit(2);
    }
    println!("wrote {}", out_path);

    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &fresh) {
            eprintln!("perf_gate: cannot write {}: {}", baseline_path, e);
            std::process::exit(2);
        }
        println!("updated baseline {}", baseline_path);
        if attribution_on {
            match record_baseline_profiles(&trace_dir) {
                Ok(paths) => {
                    for p in paths {
                        println!("recorded baseline profile {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("perf_gate: cannot record baseline profiles: {}", e);
                    std::process::exit(2);
                }
            }
        }
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_gate: cannot read baseline {}: {} \
                 (run with --update-baseline to create it)",
                baseline_path, e
            );
            std::process::exit(2);
        }
    };
    let baseline = match parse_gate_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: bad baseline {}: {}", baseline_path, e);
            std::process::exit(2);
        }
    };

    let checks = compare(&baseline, &current, slack_pct, iqr_mult);
    println!(
        "{:<14} {:>12} {:>12} {:>12}  verdict",
        "metric", "baseline", "current", "limit"
    );
    let mut failed: Vec<String> = Vec::new();
    for c in &checks {
        let (cur, verdict) = match (&c.current, c.regressed) {
            (Some(cur), false) => (format!("{:.4}", cur.median), "ok"),
            (Some(cur), true) => (format!("{:.4}", cur.median), "REGRESSED"),
            (None, _) => ("missing".to_string(), "MISSING"),
        };
        println!(
            "{:<14} {:>12.4} {:>12} {:>12.4}  {}",
            c.metric, c.baseline.median, cur, c.limit_ms, verdict
        );
        if c.regressed {
            failed.push(c.metric.clone());
        }
    }
    if failed.is_empty() {
        println!("perf_gate: OK against {}", baseline_path);
        return;
    }
    eprintln!("perf_gate: REGRESSION against {}", baseline_path);
    if attribution_on {
        let out_dir = artifact_dir(&out_path);
        for bench in &failed {
            write_attribution(bench, &trace_dir, &out_dir);
        }
    }
    std::process::exit(1);
}
