//! The CI performance regression gate: runs the canonical workloads
//! (scheduler fanout, MPI ping-pong, ISx) `HIPER_REPS` times each, writes
//! the fresh medians + IQRs to `BENCH_perf_gate.json`, and compares them
//! against the checked-in baseline with the noise-aware rule from
//! [`hiper_bench::perfgate`].
//!
//! ```text
//! cargo run --release -p hiper-bench --bin perf_gate
//! cargo run --release -p hiper-bench --bin perf_gate -- --update-baseline
//! ```
//!
//! Flags:
//!
//! * `--baseline FILE` — baseline to gate against (default
//!   `configs/perf_gate_baseline.json`)
//! * `--out FILE` — where to write the fresh results (default
//!   `BENCH_perf_gate.json`)
//! * `--update-baseline` — also overwrite the baseline file with the fresh
//!   results (run on a quiet machine, then commit)
//! * `HIPER_REPS` — timed reps per workload (default 7)
//! * `HIPER_GATE_SLACK_PCT` / `HIPER_GATE_IQR_MULT` — tuning knobs
//!
//! Exits 0 when every metric holds, 1 on any regression, 2 on usage/IO
//! errors. A missing baseline file is exit 2 with a hint to run
//! `--update-baseline` — CI must never silently pass because the baseline
//! vanished.

use hiper_bench::perfgate::{
    compare, gate_json, parse_gate_json, run_all, DEFAULT_IQR_MULT, DEFAULT_SLACK_PCT,
};
use hiper_bench::util::env_param;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{}=", flag);
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&eq).map(str::to_string))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "configs/perf_gate_baseline.json".into());
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_perf_gate.json".into());
    let update_baseline = args.iter().any(|a| a == "--update-baseline");
    let reps = env_param("HIPER_REPS", 7);
    let slack_pct = env_f64("HIPER_GATE_SLACK_PCT", DEFAULT_SLACK_PCT);
    let iqr_mult = env_f64("HIPER_GATE_IQR_MULT", DEFAULT_IQR_MULT);

    let _metrics = hiper_bench::util::metrics_session();

    eprintln!(
        "perf_gate: {} reps/workload, slack {:.1}%, {}x IQR noise allowance",
        reps, slack_pct, iqr_mult
    );
    let current = run_all(reps);
    let fresh = gate_json(&current);
    if let Err(e) = std::fs::write(&out_path, &fresh) {
        eprintln!("perf_gate: cannot write {}: {}", out_path, e);
        std::process::exit(2);
    }
    println!("wrote {}", out_path);

    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &fresh) {
            eprintln!("perf_gate: cannot write {}: {}", baseline_path, e);
            std::process::exit(2);
        }
        println!("updated baseline {}", baseline_path);
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_gate: cannot read baseline {}: {} \
                 (run with --update-baseline to create it)",
                baseline_path, e
            );
            std::process::exit(2);
        }
    };
    let baseline = match parse_gate_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: bad baseline {}: {}", baseline_path, e);
            std::process::exit(2);
        }
    };

    let checks = compare(&baseline, &current, slack_pct, iqr_mult);
    println!(
        "{:<14} {:>12} {:>12} {:>12}  verdict",
        "metric", "baseline", "current", "limit"
    );
    let mut regressed = false;
    for c in &checks {
        let (cur, verdict) = match (&c.current, c.regressed) {
            (Some(cur), false) => (format!("{:.4}", cur.median), "ok"),
            (Some(cur), true) => (format!("{:.4}", cur.median), "REGRESSED"),
            (None, _) => ("missing".to_string(), "MISSING"),
        };
        println!(
            "{:<14} {:>12.4} {:>12} {:>12.4}  {}",
            c.metric, c.baseline.median, cur, c.limit_ms, verdict
        );
        regressed |= c.regressed;
    }
    if regressed {
        eprintln!("perf_gate: REGRESSION against {}", baseline_path);
        std::process::exit(1);
    }
    println!("perf_gate: OK against {}", baseline_path);
}
