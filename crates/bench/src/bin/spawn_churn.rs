//! Standalone runner for the spawn-churn workload (the allocation-path
//! microbench gated by `perf_gate`): a future-based fib storm, an
//! empty-task burst, and a saturated grain-1 `forasync`.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin spawn_churn
//! ```
//!
//! Prints the median + IQR and, with `--out FILE`, writes them as gate
//! JSON (the same schema `perf_gate` consumes). `HIPER_REPS` sets the
//! timed repetitions (default 9). `--stats` prints scheduler counters,
//! which is the quickest way to see the new allocation-path counters
//! (`tasks_inline`, `slab_hits`/`slab_misses`, `splits_elided`,
//! `promise_inline_waiters`) move.

use std::collections::BTreeMap;

use hiper_bench::perfgate::{gate_json, run_spawn_churn};
use hiper_bench::util::env_param;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let reps = env_param("HIPER_REPS", 9);

    let _trace = hiper_bench::util::trace_session();
    let _metrics = hiper_bench::util::metrics_session();

    let summary = run_spawn_churn(reps);
    println!(
        "spawn_churn: median {:.4} ms, iqr {:.4} ms ({} reps)",
        summary.median, summary.iqr, summary.reps
    );
    if hiper_bench::util::stats_enabled() {
        // Counters for one extra, observed rep on a fresh runtime.
        let rt = hiper_runtime::Runtime::new(hiper_platform::autogen::smp(4));
        let before = rt.sched_stats();
        let acc = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let a = std::sync::Arc::clone(&acc);
        let rt2 = rt.clone();
        rt.block_on(move || {
            rt2.forasync_1d(50_000, 1, move |_| {
                a.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        eprintln!(
            "[stats spawn_churn] sched: {}",
            rt.sched_stats().diff(&before)
        );
        rt.shutdown();
    }
    if let Some(path) = out_path {
        let mut metrics = BTreeMap::new();
        metrics.insert("spawn_churn_ms".to_string(), summary);
        if let Err(e) = std::fs::write(&path, gate_json(&metrics)) {
            eprintln!("spawn_churn: cannot write {}: {}", path, e);
            std::process::exit(2);
        }
        println!("wrote {}", path);
    }
}
