//! Post-mortem profiler: replays a Chrome trace (written by any harness's
//! `--trace out.json`) into the task-DAG critical path, per-worker
//! utilization timelines, and load-imbalance / steal-locality summaries.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin profile -- trace.json [--out summary.txt]
//! ```
//!
//! The critical path is the longest spawn chain ending at the last task to
//! finish, decomposed into compute, module (communication), pop-wait and
//! steal-wait segments that tile its wall interval exactly — the number to
//! attack first when a run is slower than expected.
//!
//! Exits 0 on success, 1 when the trace holds no complete task, 2 on
//! usage/IO errors.

use hiper_bench::traceload::load_chrome_trace;
use hiper_trace::analysis::ProfileAnalysis;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: profile <trace.json> [--out summary.txt]");
            std::process::exit(2);
        }
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        });

    let data = match load_chrome_trace(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("profile: cannot load {}: {}", path, e);
            std::process::exit(2);
        }
    };
    let analysis = ProfileAnalysis::build(&data);
    let rendered = analysis.to_string();
    print!("{}", rendered);
    if let Some(out) = out {
        if let Err(e) = std::fs::write(&out, &rendered) {
            eprintln!("profile: cannot write {}: {}", out, e);
            std::process::exit(2);
        }
        println!("wrote {}", out);
    }
    if analysis.critical_path.is_none() {
        eprintln!("profile: no complete task in {} — nothing to analyze", path);
        std::process::exit(1);
    }
}
