//! Post-mortem profiler: replays a Chrome trace (written by any harness's
//! `--trace out.json`) into the task-DAG critical path, per-worker
//! utilization timelines, and load-imbalance / steal-locality summaries —
//! and, with `--diff`, aligns two same-workload runs and attributes the
//! wall-clock delta (DESIGN.md §2.14).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin profile -- trace.json [--out summary.txt]
//! cargo run --release -p hiper-bench --bin profile -- --diff base.json cand.json
//! ```
//!
//! Single-trace mode analyzes one run; the critical path is the longest
//! spawn chain ending at the last task to finish, decomposed into compute,
//! module (communication), pop-wait and steal-wait segments that tile its
//! wall interval exactly — the number to attack first when a run is slower
//! than expected.
//!
//! Diff mode accepts either Chrome traces or compact `*.profile.json`
//! files (written by `--save-profile` or `perf_gate --update-baseline`);
//! the two forms mix freely. Flags:
//!
//! * `--out FILE` — also write the report to FILE
//! * `--json` — emit the diff as JSON instead of markdown
//! * `--top N` — ranked contributors to keep (default 10)
//! * `--strict` — exit 3 when any analyzed trace is PARTIAL (dropped
//!   events or orphan message delivers make the critical path a lower
//!   bound); applies to both modes
//! * `--save-profile FILE` — single-trace mode: write the compact
//!   diffable profile of the trace
//! * `--metrics-base FILE` / `--metrics-cand FILE` — metrics snapshot
//!   JSONs (`hiper_metrics::snapshot_json`) refining the respective side
//! * `--label-base S` / `--label-cand S` — report labels (default: file
//!   stems)
//!
//! Exits 0 on success, 1 when a trace holds no complete task, 2 on
//! usage/IO errors, 3 on `--strict` PARTIAL.

use hiper_bench::traceload::load_chrome_trace;
use hiper_metrics::MetricsSnapshot;
use hiper_trace::analysis::ProfileAnalysis;
use hiper_trace::diff::{DiffInput, DiffOptions, TraceDiff};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{}=", flag);
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&eq).map(str::to_string))
        })
}

fn stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Loads one diff side: a compact profile (sniffed by its marker) or a
/// Chrome trace run through the analyzer.
fn load_input(path: &str, label: &str) -> Result<DiffInput, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    if text.contains("\"hiper_profile\"") {
        if let Ok(mut input) = DiffInput::parse_json(&text) {
            if input.label.is_empty() {
                input.label = label.to_string();
            }
            return Ok(input);
        }
    }
    let data = load_chrome_trace(path).map_err(|e| format!("cannot load {}: {}", path, e))?;
    Ok(DiffInput::from_trace(label, &data))
}

fn apply_metrics_file(input: &mut DiffInput, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let snap =
        MetricsSnapshot::parse_json(&text).map_err(|e| format!("bad snapshot {}: {}", path, e))?;
    input.apply_metrics(&snap);
    Ok(())
}

fn write_out(out: &Option<String>, rendered: &str) {
    if let Some(out) = out {
        if let Err(e) = std::fs::write(out, rendered) {
            eprintln!("profile: cannot write {}: {}", out, e);
            std::process::exit(2);
        }
        println!("wrote {}", out);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = flag_value(&args, "--out");
    let strict = args.iter().any(|a| a == "--strict");
    let as_json = args.iter().any(|a| a == "--json");
    let top = flag_value(&args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let (base_path, cand_path) = match (args.get(i + 1), args.get(i + 2)) {
            (Some(b), Some(c)) if !b.starts_with("--") && !c.starts_with("--") => {
                (b.clone(), c.clone())
            }
            _ => {
                eprintln!(
                    "usage: profile --diff <base.json> <cand.json> [--json] [--top N] [--strict]"
                );
                std::process::exit(2);
            }
        };
        let base_label = flag_value(&args, "--label-base").unwrap_or_else(|| stem(&base_path));
        let cand_label = flag_value(&args, "--label-cand").unwrap_or_else(|| stem(&cand_path));
        let mut base = match load_input(&base_path, &base_label) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("profile: {}", e);
                std::process::exit(2);
            }
        };
        let mut cand = match load_input(&cand_path, &cand_label) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("profile: {}", e);
                std::process::exit(2);
            }
        };
        for (side, flag) in [(&mut base, "--metrics-base"), (&mut cand, "--metrics-cand")] {
            if let Some(path) = flag_value(&args, flag) {
                if let Err(e) = apply_metrics_file(side, &path) {
                    eprintln!("profile: {}", e);
                    std::process::exit(2);
                }
            }
        }
        let diff = TraceDiff::build(&base, &cand, DiffOptions { top });
        let rendered = if as_json {
            diff.to_json()
        } else {
            diff.to_markdown()
        };
        print!("{}", rendered);
        write_out(&out, &rendered);
        if strict && diff.partial {
            eprintln!(
                "profile: PARTIAL diff under --strict (dropped events or orphan \
                 delivers on at least one side; raise HIPER_TRACE_BUF and re-record)"
            );
            std::process::exit(3);
        }
        return;
    }

    let path = match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!(
                "usage: profile <trace.json> [--out summary.txt] [--strict] [--save-profile f]\n\
                 \x20      profile --diff <base.json> <cand.json> [--json] [--top N] [--strict]"
            );
            std::process::exit(2);
        }
    };
    let data = match load_chrome_trace(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("profile: cannot load {}: {}", path, e);
            std::process::exit(2);
        }
    };
    let analysis = ProfileAnalysis::build(&data);
    let rendered = analysis.to_string();
    print!("{}", rendered);
    write_out(&out, &rendered);
    if let Some(save) = flag_value(&args, "--save-profile") {
        let input = DiffInput::from_trace(&stem(&path), &data);
        if let Err(e) = std::fs::write(&save, input.to_json()) {
            eprintln!("profile: cannot write {}: {}", save, e);
            std::process::exit(2);
        }
        println!("wrote {}", save);
    }
    if analysis.critical_path.is_none() {
        eprintln!("profile: no complete task in {} — nothing to analyze", path);
        std::process::exit(1);
    }
    if strict && (analysis.dropped > 0 || analysis.orphan_delivers > 0) {
        eprintln!(
            "profile: PARTIAL trace under --strict ({} dropped event(s), {} orphan \
             deliver(s)); the critical path is a lower bound — raise HIPER_TRACE_BUF",
            analysis.dropped, analysis.orphan_delivers
        );
        std::process::exit(3);
    }
}
