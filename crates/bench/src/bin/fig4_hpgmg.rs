//! Figure 4: HPGMG-FV weak scaling — reference hybrid (MPI+OpenMP) vs
//! HiPER (UPC++/MPI modules).
//!
//! Weak scaling: fixed fine-level slab per rank; the paper reports the two
//! implementations "comparable in performance". Both backends share one
//! numeric core, so the solutions are bit-identical (asserted each run).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin fig4_hpgmg
//! env: HIPER_NODES_MAX (default 8), HIPER_MG_N (default 16),
//!      HIPER_MG_NZ (default 8), HIPER_MG_VCYCLES (default 4),
//!      HIPER_REPS (default 3)
//! ```

use std::sync::Arc;

use hiper_bench::hpgmg::{self, Dims, HiperBackend, MgParams, MpiOmpBackend};
use hiper_bench::util::{
    env_param, metrics_session, print_rank_stats, print_table, stats_enabled, summarize,
    trace_session, Timing,
};
use hiper_forkjoin::Pool;
use hiper_mpi::MpiModule;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_upcxx::{UpcxxModule, UpcxxReduce, UpcxxWorld};

const CORES_PER_NODE: usize = 2;

fn run_ref(nodes: usize, params: MgParams, reps: usize) -> (Timing, Vec<f64>) {
    let results = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(1)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            move |env, mpi| {
                let backend = MpiOmpBackend {
                    raw: Arc::clone(mpi.raw()),
                    pool: Pool::new(CORES_PER_NODE),
                };
                let mut samples = Vec::new();
                let mut norms = Vec::new();
                for rep in 0..reps + 1 {
                    mpi.barrier();
                    let t0 = std::time::Instant::now();
                    let (_lv, n) = hpgmg::solve(&params, &backend, env.rank, env.nranks);
                    mpi.barrier();
                    if rep > 0 {
                        samples.push(t0.elapsed().as_secs_f64());
                    }
                    norms = n;
                }
                backend.pool.shutdown();
                (samples, norms)
            },
        );
    (summarize(&results[0].0), results[0].1.clone())
}

fn run_hiper(nodes: usize, params: MgParams, reps: usize) -> (Timing, Vec<f64>) {
    let uworld = UpcxxWorld::new(nodes, 1 << 16);
    let reduce = UpcxxReduce::new();
    let results = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(CORES_PER_NODE)
        .run(
            move |_r, t| {
                let mpi = MpiModule::new(t.clone());
                let upcxx = UpcxxModule::new(uworld.clone(), t);
                (
                    vec![
                        Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                        Arc::clone(&upcxx) as Arc<dyn SchedulerModule>,
                    ],
                    (mpi, upcxx, reduce.clone()),
                )
            },
            move |env, (mpi, upcxx, reduce)| {
                let backend = HiperBackend {
                    rt: env.runtime.clone(),
                    mpi: Arc::clone(&mpi),
                    upcxx,
                    reduce,
                };
                let mut samples = Vec::new();
                let mut norms = Vec::new();
                for rep in 0..reps + 1 {
                    mpi.barrier();
                    let t0 = std::time::Instant::now();
                    let (_lv, n) = hpgmg::solve(&params, &backend, env.rank, env.nranks);
                    mpi.barrier();
                    if rep > 0 {
                        samples.push(t0.elapsed().as_secs_f64());
                    }
                    norms = n;
                }
                if stats_enabled() {
                    print_rank_stats(&format!("hpgmg-hiper rank {}", env.rank), &env.runtime);
                }
                (samples, norms)
            },
        );
    (summarize(&results[0].0), results[0].1.clone())
}

fn main() {
    let _trace = trace_session();
    let _metrics = metrics_session();
    let nodes_max = env_param("HIPER_NODES_MAX", 8);
    let n = env_param("HIPER_MG_N", 16);
    let nz = env_param("HIPER_MG_NZ", 8);
    let reps = env_param("HIPER_REPS", 3);
    let params = MgParams {
        fine: Dims { nx: n, ny: n, nz },
        vcycles: env_param("HIPER_MG_VCYCLES", 4),
        smooth_sweeps: 2,
        bottom_sweeps: 60,
    };
    println!("HPGMG-FV weak scaling (paper Fig. 4)");
    println!(
        "fine slab {}x{}x{} per rank, {} V-cycles, reps={}",
        n, nz, n, params.vcycles, reps
    );

    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= nodes_max {
        let (reference, norms_ref) = run_ref(nodes, params, reps);
        let (hiper, norms_hiper) = run_hiper(nodes, params, reps);
        // The solutions are bit-identical (asserted in the hpgmg tests);
        // the residual *norm* is a cross-rank sum whose combine order
        // differs between the MPI binomial reduction and the UPC++ rpc
        // arrival order, so compare norms to ULP-scale tolerance.
        for (a, b) in norms_ref.iter().zip(&norms_hiper) {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1e-30),
                "backends diverged at {} nodes: {} vs {}",
                nodes,
                a,
                b
            );
        }
        let reduction = norms_ref.last().unwrap() / norms_ref[0];
        println!(
            "  {} nodes: residual reduced {:.1e} over {} V-cycles",
            nodes, reduction, params.vcycles
        );
        rows.push((nodes, vec![reference, hiper]));
        nodes *= 2;
    }
    print_table(
        "HPGMG-FV solve time (lower is better; solutions verified identical)",
        "nodes",
        &["Reference hybrid", "HiPER (UPC++/MPI)"],
        &rows,
    );
}
