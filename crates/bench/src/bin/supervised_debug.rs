//! Minimal driver for the supervised workloads (debugging / CI spot runs).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin supervised_debug \
//!     [-- isx|uts] [--kill] [--trace out.json]
//! ```
//!
//! With `--trace` (or `HIPER_TRACE`) the run is recorded as a Chrome trace;
//! a `--kill` run then carries `rank_down`/`rank_restored`/`task_retry`
//! events that `trace_check` validates (pairing, epoch order, delivery
//! blackout).

use hiper_bench::{supervised, util};
use hiper_netsim::KillSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("isx");
    let kill = args.iter().any(|a| a == "--kill");
    let _trace = util::trace_session();
    let rounds = 3;
    let (nranks, name) = match which {
        "uts" => (2, "uts"),
        _ => (4, "isx"),
    };
    let spec = kill.then(|| KillSpec::seeded(0xC0FFEE, nranks, rounds));
    eprintln!("running supervised {} kill={:?}", name, spec);
    let out = match which {
        "uts" => supervised::run_supervised_uts(spec, rounds),
        _ => supervised::run_supervised_isx(spec, rounds),
    };
    eprintln!(
        "done in {:?}: recoveries={} digest[0][..4]={:?}",
        out.elapsed,
        out.recoveries,
        &out.digest[0][..out.digest[0].len().min(4)]
    );
}
