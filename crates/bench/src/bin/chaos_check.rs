//! Chaos harness: real workloads under a grid of fault plans.
//!
//! Runs ISx and UTS (plus an MPI collective storm and a crash/restart
//! checkpoint cycle) under deterministic fault injection — seeded random
//! drops, duplicates, reorders, latency jitter and a transient rank kill —
//! and asserts that every faulty run produces **bit-identical results** to
//! the fault-free baseline: reliable delivery must hide the chaos
//! completely. Also measures the fault-free scheduler fan-out path against
//! the recorded `BENCH_sched_hotpath.json` baseline to show the error
//! plumbing adds no measurable overhead. Writes `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin chaos_check [-- --seed N] [--stats] [--trace out.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hiper_bench::isx::{self, IsxParams};
use hiper_bench::supervised::{self, SupervisedOutcome};
use hiper_bench::util::{
    metrics_session, print_net_stats, print_rank_stats, print_reliable_stats, stats_enabled,
    trace_session,
};
use hiper_bench::uts::{self, UtsParams};
use hiper_checkpoint::CheckpointModule;
use hiper_mpi::{MpiModule, ReduceOp};
use hiper_netsim::{
    FaultPlan, KillSpec, NetConfig, NetStatsSnapshot, ReliableTransport, RetryConfig, SpmdBuilder,
    SupervisedCtx, SupervisorHarness,
};
use hiper_runtime::supervisor::{RecoveryError, RetryPolicy};
use hiper_runtime::{api, Runtime, RuntimeBuilder, SchedulerModule};
use hiper_shmem::{ShmemModule, ShmemWorld};

/// Fan-out medians recorded in BENCH_sched_hotpath.json (release, this
/// container class); the overhead gate compares against it.
const HOTPATH_FANOUT_BASELINE_MS: f64 = 1.8394;

/// One run's observables: per-rank payload digest + wire/retry counters.
struct RunOutcome {
    /// Scenario-specific result bytes, concatenated per rank in rank order.
    digest: Vec<Vec<u64>>,
    /// Wall-clock for the cluster run.
    elapsed: Duration,
    /// Reliable-layer retransmissions summed over ranks.
    retries: u64,
    /// Cluster-wide wire counters.
    net: NetStatsSnapshot,
}

fn arg_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// The fault-plan grid every workload runs under. `None` is the baseline;
/// each armed plan must reproduce its digests exactly.
fn plan_grid(seed: u64) -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("fault-free", None),
        (
            "drop10+jitter",
            Some(
                FaultPlan::seeded(seed)
                    .drop_p(0.10)
                    .jitter(Duration::from_micros(200)),
            ),
        ),
        (
            "drop+dup+reorder+jitter",
            Some(
                FaultPlan::seeded(seed ^ 0x5eed)
                    .drop_p(0.10)
                    .dup_p(0.05)
                    .reorder_p(0.10)
                    .jitter(Duration::from_micros(300)),
            ),
        ),
        (
            "transient-rank-kill",
            Some(FaultPlan::seeded(seed ^ 0xdead).kill(
                1,
                Duration::from_millis(5),
                Some(Duration::from_millis(60)),
            )),
        ),
    ]
}

fn build(nranks: usize, plan: &Option<FaultPlan>) -> SpmdBuilder {
    let b = SpmdBuilder::new(nranks)
        .net(NetConfig::default())
        .workers_per_rank(2);
    match plan {
        Some(p) => b.faults(p.clone()),
        None => b,
    }
}

// ---------------------------------------------------------------------
// Scenario: ISx bucket sort (SHMEM)
// ---------------------------------------------------------------------

fn run_isx(label: &str, plan: &Option<FaultPlan>) -> RunOutcome {
    let nranks = 4;
    let params = IsxParams {
        keys_per_rank: 4096,
        key_max: 1 << 16,
        ..Default::default()
    };
    let world = ShmemWorld::new(nranks, 1 << 20);
    let retries = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&retries);
    let net: Arc<parking_lot::Mutex<Option<NetStatsSnapshot>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let n2 = Arc::clone(&net);
    let show_stats = stats_enabled();
    let label = label.to_string();
    let t0 = Instant::now();
    let digest = build(nranks, plan).run(
        move |_r, t| {
            let shmem = ShmemModule::new(world.clone(), t);
            (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
        },
        move |env, shmem| {
            let result = isx::run_hiper(&shmem, &params);
            shmem.barrier_all();
            r2.fetch_add(shmem.raw().retries(), Ordering::Relaxed);
            if env.rank == 0 {
                *n2.lock() = Some(env.transport.net_stats());
                if show_stats {
                    print_rank_stats(&format!("isx/{} rank 0", label), &env.runtime);
                    print_net_stats(&format!("isx/{}", label), &env.transport);
                    print_reliable_stats(&format!("isx/{} rank 0", label), shmem.raw().reliable());
                }
            }
            result.sorted
        },
    );
    let net = net.lock().take().expect("rank 0 always reports");
    RunOutcome {
        digest,
        elapsed: t0.elapsed(),
        retries: retries.load(Ordering::Relaxed),
        net,
    }
}

// ---------------------------------------------------------------------
// Scenario: UTS tree counting (SHMEM work stealing)
// ---------------------------------------------------------------------

fn run_uts(label: &str, plan: &Option<FaultPlan>) -> RunOutcome {
    let nranks = 2;
    let params = UtsParams {
        max_depth: 11,
        ..Default::default()
    };
    let world = ShmemWorld::new(nranks, 1 << 22);
    let expected = uts::seq_count(&params);
    let retries = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&retries);
    let net: Arc<parking_lot::Mutex<Option<NetStatsSnapshot>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let n2 = Arc::clone(&net);
    let show_stats = stats_enabled();
    let label = label.to_string();
    let t0 = Instant::now();
    let digest = build(nranks, plan).run(
        move |_r, t| {
            let shmem = ShmemModule::new(world.clone(), t);
            (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
        },
        move |env, shmem| {
            let result = uts::run_hiper(&shmem, &params);
            shmem.barrier_all();
            assert_eq!(
                result.global_count, expected,
                "UTS count must match the sequential oracle"
            );
            r2.fetch_add(shmem.raw().retries(), Ordering::Relaxed);
            if env.rank == 0 {
                *n2.lock() = Some(env.transport.net_stats());
                if show_stats {
                    print_net_stats(&format!("uts/{}", label), &env.transport);
                    print_reliable_stats(&format!("uts/{} rank 0", label), shmem.raw().reliable());
                }
            }
            vec![result.global_count, result.local_count]
        },
    );
    let net = net.lock().take().expect("rank 0 always reports");
    RunOutcome {
        digest,
        elapsed: t0.elapsed(),
        retries: retries.load(Ordering::Relaxed),
        net,
    }
}

// ---------------------------------------------------------------------
// Scenario: MPI collective storm
// ---------------------------------------------------------------------

fn run_mpi_storm(label: &str, plan: &Option<FaultPlan>) -> RunOutcome {
    let nranks = 4;
    let retries = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&retries);
    let net: Arc<parking_lot::Mutex<Option<NetStatsSnapshot>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let n2 = Arc::clone(&net);
    let show_stats = stats_enabled();
    let label = label.to_string();
    let t0 = Instant::now();
    let digest = build(nranks, plan).run(
        move |_r, t| {
            let mpi = MpiModule::new(t);
            (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
        },
        move |env, mpi| {
            let mut digest = Vec::new();
            for round in 0..10u64 {
                let sum = mpi.allreduce(&[env.rank as u64 + round], ReduceOp::Sum);
                digest.push(sum[0]);
                let parts: Vec<Vec<u64>> = (0..env.nranks)
                    .map(|d| vec![(env.rank * 100 + d) as u64 + round])
                    .collect();
                let got = mpi.alltoallv(parts);
                digest.extend(got.into_iter().flatten());
                mpi.barrier();
            }
            r2.fetch_add(mpi.raw().retries(), Ordering::Relaxed);
            if env.rank == 0 {
                *n2.lock() = Some(env.transport.net_stats());
                if show_stats {
                    print_net_stats(&format!("mpi/{}", label), &env.transport);
                    print_reliable_stats(&format!("mpi/{} rank 0", label), mpi.raw().reliable());
                }
            }
            digest
        },
    );
    let net = net.lock().take().expect("rank 0 always reports");
    RunOutcome {
        digest,
        elapsed: t0.elapsed(),
        retries: retries.load(Ordering::Relaxed),
        net,
    }
}

// ---------------------------------------------------------------------
// Scenario: crash + restart from the latest checkpoint
// ---------------------------------------------------------------------

fn run_checkpoint_restart() -> bool {
    let dir = std::env::temp_dir().join("hiper_chaos_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let payload: Vec<u8> = (0u32..4096).flat_map(|i| i.to_le_bytes()).collect();
    {
        // First life: checkpoint three versions, then "crash".
        let ckpt = CheckpointModule::new(dir.clone());
        let rt = RuntimeBuilder::new(hiper_platform::autogen::figure2(2))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .expect("checkpoint platform");
        let c = Arc::clone(&ckpt);
        let data = payload.clone();
        rt.block_on(move || {
            c.checkpoint("chaos", 1, vec![0xAA; 64]).wait();
            c.checkpoint("chaos", 2, vec![0xBB; 64]).wait();
            c.checkpoint("chaos", 9, data).wait();
        });
        rt.shutdown();
    }
    // Second life: restart from whatever survived.
    let ckpt = CheckpointModule::new(dir);
    let rt = RuntimeBuilder::new(hiper_platform::autogen::figure2(2))
        .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
        .build()
        .expect("checkpoint platform");
    let c = Arc::clone(&ckpt);
    let ok = rt.block_on(move || {
        let fut = c.restore_latest("chaos").expect("snapshots survived");
        let (version, data) = fut.get().expect("snapshot intact");
        version == 9 && data == payload
    });
    rt.shutdown();
    ok
}

// ---------------------------------------------------------------------
// Recovery grid: kill-mid-run, restore from checkpoint, replay
// ---------------------------------------------------------------------

/// Runs ISx and UTS with a seeded rank kill mid-run: the recovered run's
/// digest must be bit-identical to the fault-free supervised baseline, and
/// a second run from the same seed must reproduce it again (determinism).
/// Returns (pass, per-scenario JSON fragments).
fn run_recovery_grid(seed: u64) -> (bool, Vec<String>) {
    let rounds = 3u64;
    let mut pass = true;
    let mut json = Vec::new();
    for (name, nranks, runner) in [
        (
            "isx",
            4usize,
            supervised::run_supervised_isx as fn(Option<KillSpec>, u64) -> SupervisedOutcome,
        ),
        (
            "uts",
            2usize,
            supervised::run_supervised_uts as fn(Option<KillSpec>, u64) -> SupervisedOutcome,
        ),
    ] {
        let kill = KillSpec::seeded(seed ^ name.len() as u64, nranks, rounds);
        let baseline = runner(None, rounds);
        let killed = runner(Some(kill.clone()), rounds);
        let killed2 = runner(Some(kill.clone()), rounds);
        let identical = killed.digest == baseline.digest;
        let deterministic = killed2.digest == killed.digest;
        let recovered = killed.recoveries >= 1 && killed.ranks_recovered >= 1;
        let ok = identical && deterministic && recovered;
        pass &= ok;
        println!(
            "  recovery/{:<6} kill rank {} at point {:?}: {:>7.1} ms  recoveries={} {}",
            name,
            kill.rank,
            kill.at_points,
            killed.elapsed.as_secs_f64() * 1e3,
            killed.recoveries,
            if ok {
                "OK"
            } else if !identical {
                "DIGEST MISMATCH"
            } else if !deterministic {
                "NON-DETERMINISTIC"
            } else {
                "NO RECOVERY DRIVEN"
            }
        );
        json.push(format!(
            "        {{ \"scenario\": \"{}\", \"victim\": {}, \"kill_points\": {:?}, \"ms\": {:.2}, \"recoveries\": {}, \"identical_to_baseline\": {}, \"deterministic\": {} }}",
            name,
            kill.rank,
            kill.at_points,
            killed.elapsed.as_secs_f64() * 1e3,
            killed.recoveries,
            identical,
            deterministic
        ));
    }
    (pass, json)
}

/// Degradation scenario: kill a rank that never checkpointed. The recovery
/// must fail terminally (`NoCheckpoint`), the peer must see the typed
/// `Unreachable` error within its retry budget, and — when
/// `HIPER_WATCHDOG_FILE` is set (the CI artifact path) — a flight record is
/// dumped for post-mortem. Returns true when the degradation is clean.
fn run_degradation() -> bool {
    use std::sync::atomic::AtomicBool;
    let dir = std::env::temp_dir().join("hiper_chaos_degrade");
    let _ = std::fs::remove_dir_all(&dir);
    let harness = SupervisorHarness::new(
        2,
        Some(KillSpec {
            rank: 0,
            at_points: vec![1],
        }),
        3,
    );
    let h_main = Arc::clone(&harness);
    let dead = Arc::new(AtomicBool::new(false));
    let outcomes = SpmdBuilder::new(2)
        .faults(FaultPlan::seeded(1).arm())
        .platform(|_| hiper_platform::autogen::figure2(1))
        .run(
            move |rank, transport| {
                let ckpt = CheckpointModule::new(dir.join(format!("r{}", rank)));
                let cfg = RetryConfig {
                    timeout: Duration::from_millis(1),
                    backoff: 2.0,
                    max_timeout: Duration::from_millis(4),
                    max_attempts: 4,
                };
                let ep = ReliableTransport::new(transport, "chaos", cfg);
                ep.register_handler(hiper_netsim::Channel::APP, Box::new(|_| {}));
                (
                    vec![Arc::clone(&ckpt) as Arc<dyn SchedulerModule>],
                    (ckpt, ep),
                )
            },
            move |env, (ckpt, ep)| {
                h_main.register(
                    env.rank,
                    env.runtime.clone(),
                    Arc::clone(&ep),
                    env.transport.engine(),
                );
                if env.rank == 1 {
                    while !dead.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    ep.send(
                        0,
                        hiper_netsim::Channel::APP,
                        1,
                        bytes::Bytes::from_static(b"ping"),
                    );
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while Instant::now() < deadline && ep.health().is_ok() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return ep.health().is_err();
                }
                let ctx = SupervisedCtx::new(Arc::clone(&h_main), ckpt, env.rank);
                let out = ctx.run_supervised(|_| {}, |_| ctx.crash_point());
                dead.store(true, Ordering::Release);
                matches!(out, Err(RecoveryError::NoCheckpoint))
            },
        );
    harness.shutdown();
    outcomes.iter().all(|&ok| ok)
}

// ---------------------------------------------------------------------
// Overhead gate: fault-free scheduler fan-out vs the recorded baseline
// ---------------------------------------------------------------------

fn measure_fanout_ms() -> f64 {
    let rt = Runtime::new(hiper_platform::autogen::smp(4));
    let reps = 30;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps + 5 {
        let acc = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&acc);
        let rt2 = rt.clone();
        let t0 = Instant::now();
        rt2.block_on(move || {
            api::finish(|| {
                for _ in 0..8 {
                    let a = Arc::clone(&a);
                    api::async_(move || {
                        for _ in 0..1000 {
                            let a = Arc::clone(&a);
                            api::async_(move || {
                                a.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            })
            .expect("no task panicked");
        });
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(acc.load(Ordering::Relaxed), 8000);
        if rep >= 5 {
            samples.push(dt);
        }
    }
    rt.shutdown();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Same fan-out, wrapped in `finish_supervised` with a retry policy: shows
/// supervision-but-no-faults stays within the hot-path gate.
fn measure_fanout_supervised_ms() -> f64 {
    let rt = Runtime::new(hiper_platform::autogen::smp(4));
    let policy = RetryPolicy::transient(3);
    let reps = 30;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps + 5 {
        let acc = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&acc);
        let rt2 = rt.clone();
        let t0 = Instant::now();
        rt2.block_on(move || {
            api::finish_supervised(&policy, |_attempt| {
                for _ in 0..8 {
                    let a = Arc::clone(&a);
                    api::async_(move || {
                        for _ in 0..1000 {
                            let a = Arc::clone(&a);
                            api::async_(move || {
                                a.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            })
            .expect("no task panicked");
        });
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(acc.load(Ordering::Relaxed), 8000);
        if rep >= 5 {
            samples.push(dt);
        }
    }
    rt.shutdown();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let trace = trace_session();
    let _metrics = metrics_session();
    let traced = trace.is_some();
    let seed = arg_seed();
    let recovery_only = std::env::args().any(|a| a == "--recovery");
    println!("chaos_check: seed {:#x}", seed);

    if recovery_only {
        // CI recovery job: just the kill-mid-run grid + the degradation
        // scenario (flight-record artifact via HIPER_WATCHDOG_FILE).
        let (grid_ok, _) = run_recovery_grid(seed);
        let degrade_ok = run_degradation();
        println!(
            "  degradation (kill with no checkpoint): {}",
            if degrade_ok { "OK" } else { "FAILED" }
        );
        let pass = grid_ok && degrade_ok;
        println!(
            "\nchaos_check --recovery: {}",
            if pass { "PASS" } else { "FAIL" }
        );
        if !pass {
            std::process::exit(1);
        }
        return;
    }

    let mut scenario_json = Vec::new();
    let mut all_pass = true;

    for (scenario, runner) in [
        ("isx", run_isx as fn(&str, &Option<FaultPlan>) -> RunOutcome),
        ("uts", run_uts as fn(&str, &Option<FaultPlan>) -> RunOutcome),
        (
            "mpi-collectives",
            run_mpi_storm as fn(&str, &Option<FaultPlan>) -> RunOutcome,
        ),
    ] {
        let mut baseline: Option<Vec<Vec<u64>>> = None;
        let mut plan_json = Vec::new();
        for (label, plan) in plan_grid(seed) {
            let out = runner(label, &plan);
            let identical = match &baseline {
                None => {
                    baseline = Some(out.digest.clone());
                    true
                }
                Some(base) => *base == out.digest,
            };
            all_pass &= identical;
            println!(
                "  {:<16} {:<24} {:>8.1} ms  retries={:<5} dropped={:<5} dup={:<4} {}",
                scenario,
                label,
                out.elapsed.as_secs_f64() * 1e3,
                out.retries,
                out.net.dropped,
                out.net.duplicated,
                if identical { "OK" } else { "MISMATCH" }
            );
            plan_json.push(format!(
                "        {{ \"plan\": \"{}\", \"ms\": {:.2}, \"retries\": {}, \"dropped\": {}, \"duplicated\": {}, \"identical_to_baseline\": {} }}",
                label,
                out.elapsed.as_secs_f64() * 1e3,
                out.retries,
                out.net.dropped,
                out.net.duplicated,
                identical
            ));
        }
        scenario_json.push(format!(
            "    \"{}\": [\n{}\n    ]",
            scenario,
            plan_json.join(",\n")
        ));
    }

    // UTS oracle: the fault-free digest must also match the sequential count.
    let oracle = uts::seq_count(&UtsParams {
        max_depth: 11,
        ..Default::default()
    });
    println!("  uts sequential oracle: {} nodes", oracle);

    let ckpt_ok = run_checkpoint_restart();
    all_pass &= ckpt_ok;
    println!(
        "  checkpoint crash/restart from latest snapshot: {}",
        if ckpt_ok { "OK" } else { "FAILED" }
    );

    let (recovery_ok, recovery_json) = run_recovery_grid(seed);
    all_pass &= recovery_ok;
    let degrade_ok = run_degradation();
    all_pass &= degrade_ok;
    println!(
        "  degradation (kill with no checkpoint): {}",
        if degrade_ok { "OK" } else { "FAILED" }
    );

    if traced {
        // Tracing inflates every timing; the overhead gate and the recorded
        // numbers are only meaningful untraced. The correctness grid above
        // still counts.
        drop(trace);
        println!(
            "\nchaos_check: {} (traced run: overhead gate and BENCH_chaos.json skipped)",
            if all_pass { "PASS" } else { "FAIL" }
        );
        if !all_pass {
            std::process::exit(1);
        }
        return;
    }

    // Two overhead gates with different jobs:
    //
    // * The *absolute* gate compares the plain fan-out median against the
    //   recorded hot-path baseline. On shared hardware a co-tenant can
    //   inflate every sample by 30-40% for minutes at a time, so this gate
    //   is deliberately coarse — 1.5x catches a genuinely broken hot path
    //   while the statistics-aware `perf_gate` binary (median + IQR noise
    //   allowance per workload) remains the precise regression tripwire.
    // * The *supervision* gate is the one this benchmark exists for:
    //   `finish_supervised` with no faults must stay within 30% of the
    //   plain fan-out **measured seconds apart in the same process**.
    //   Pairing the two medians cancels host noise — both move together —
    //   so the ratio is tight even when the absolute numbers wobble.
    //
    // An over-gate absolute result re-measures up to twice, spaced out so
    // a single co-tenant burst cannot straddle every attempt; the best
    // median wins.
    let gated = |measure: &dyn Fn() -> f64| {
        let mut best = f64::INFINITY;
        for attempt in 0..3 {
            best = best.min(measure());
            if best <= HOTPATH_FANOUT_BASELINE_MS * 1.30 {
                break;
            }
            if attempt < 2 {
                std::thread::sleep(Duration::from_millis(400));
            }
        }
        best
    };

    let fanout_ms = gated(&measure_fanout_ms);
    let overhead_pct = (fanout_ms / HOTPATH_FANOUT_BASELINE_MS - 1.0) * 100.0;
    let overhead_ok = fanout_ms <= HOTPATH_FANOUT_BASELINE_MS * 1.50;
    all_pass &= overhead_ok;
    println!(
        "  fanout_8x1000 median: {:.3} ms (baseline {:.3} ms, {:+.1}%) {}",
        fanout_ms,
        HOTPATH_FANOUT_BASELINE_MS,
        overhead_pct,
        if overhead_ok { "OK" } else { "REGRESSION" }
    );

    let fanout_sup_ms = gated(&measure_fanout_supervised_ms);
    let sup_pct = (fanout_sup_ms / fanout_ms - 1.0) * 100.0;
    let sup_ok = fanout_sup_ms <= fanout_ms * 1.30;
    all_pass &= sup_ok;
    println!(
        "  fanout_8x1000 supervised median: {:.3} ms (vs plain {:.3} ms, {:+.1}%) {}",
        fanout_sup_ms,
        fanout_ms,
        sup_pct,
        if sup_ok { "OK" } else { "REGRESSION" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"crates/bench/src/bin/chaos_check.rs\",\n  \"seed\": {},\n  \"scenarios\": {{\n{}\n  }},\n  \"checkpoint_restart_ok\": {},\n  \"recovery\": {{\n    \"grid\": [\n{}\n    ],\n    \"degradation_ok\": {},\n    \"pass\": {}\n  }},\n  \"overhead\": {{\n    \"fanout_baseline_ms\": {},\n    \"fanout_measured_ms\": {:.4},\n    \"fanout_supervised_ms\": {:.4},\n    \"overhead_pct\": {:.1},\n    \"supervised_vs_plain_pct\": {:.1},\n    \"abs_gate_pct\": 50,\n    \"supervised_gate_pct\": 30,\n    \"pass\": {}\n  }},\n  \"pass\": {}\n}}\n",
        seed,
        scenario_json.join(",\n"),
        ckpt_ok,
        recovery_json.join(",\n"),
        degrade_ok,
        recovery_ok && degrade_ok,
        HOTPATH_FANOUT_BASELINE_MS,
        fanout_ms,
        fanout_sup_ms,
        overhead_pct,
        sup_pct,
        overhead_ok && sup_ok,
        all_pass
    );
    std::fs::write("BENCH_chaos.json", &json).expect("cannot write BENCH_chaos.json");
    println!(
        "\nchaos_check: {} (BENCH_chaos.json written)",
        if all_pass { "PASS" } else { "FAIL" }
    );
    if !all_pass {
        std::process::exit(1);
    }
}
