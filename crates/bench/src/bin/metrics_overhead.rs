//! Measures what the metrics registry costs: the spawn-heavy fanout
//! workload run with metrics disabled and enabled, plus the raw per-record
//! histogram cost, written to `BENCH_metrics_overhead.json`.
//!
//! The disabled numbers back the acceptance bar: every instrumented site
//! guards its clock reads behind one relaxed load of the global enable
//! flag, so the disabled median must sit within 2% of the enabled=never
//! hot path (`BENCH_sched_hotpath.json` territory).
//!
//! ```text
//! cargo run --release -p hiper-bench --bin metrics_overhead -- [out.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hiper_platform::autogen;
use hiper_runtime::{api, Runtime};

/// Same fanout as `trace_overhead` / the perf gate: 8 producers x 1000
/// tiny consumers, hammering spawn/wake/steal — every metrics-instrumented
/// scheduler path.
fn fanout(rt: &Runtime) -> u64 {
    let acc = Arc::new(AtomicU64::new(0));
    let a = Arc::clone(&acc);
    rt.block_on(move || {
        api::finish(|| {
            for _ in 0..8 {
                let a = Arc::clone(&a);
                api::async_(move || {
                    for _ in 0..1000 {
                        let a = Arc::clone(&a);
                        api::async_(move || {
                            a.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        })
        .expect("no task panicked");
    });
    acc.load(Ordering::Relaxed)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_fanout(rt: &Runtime, warmup: usize, reps: usize) -> (f64, f64, f64) {
    for _ in 0..warmup {
        assert_eq!(fanout(rt), 8000);
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            fanout(rt);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let med = median(&mut samples);
    (samples[0], med, samples[samples.len() - 1])
}

/// ns per `Histogram::record` call (enabled path) over `n` calls.
fn record_cost(n: u64) -> f64 {
    let h = hiper_metrics::histogram("hiper_bench_record_cost_ns");
    let t0 = Instant::now();
    for i in 0..n {
        h.record(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / n as f64
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_metrics_overhead.json".to_string());
    let warmup = hiper_bench::util::env_param("HIPER_WARMUP", 5);
    let reps = hiper_bench::util::env_param("HIPER_REPS", 31);

    let rt = Runtime::new(autogen::smp(4));

    hiper_metrics::set_enabled(false);
    let (dis_min, dis_med, dis_max) = time_fanout(&rt, warmup, reps);

    hiper_metrics::set_enabled(true);
    let record_ns = record_cost(10_000_000);
    let (en_min, en_med, en_max) = time_fanout(&rt, warmup, reps);
    hiper_metrics::set_enabled(false);

    rt.shutdown();

    let overhead_pct = (en_med / dis_med - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"metrics_overhead\",\n  \"workload\": \"fanout_8x1000_producer_consumer\",\n  \"workers\": 4,\n  \"reps\": {reps},\n  \"disabled\": {{ \"min_ms\": {dis_min:.4}, \"median_ms\": {dis_med:.4}, \"max_ms\": {dis_max:.4} }},\n  \"enabled\": {{ \"min_ms\": {en_min:.4}, \"median_ms\": {en_med:.4}, \"max_ms\": {en_max:.4}, \"record_ns\": {record_ns:.3} }},\n  \"enabled_over_disabled_pct\": {overhead_pct:.2}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write results");
    print!("{}", json);
    println!("wrote {}", out);
}
