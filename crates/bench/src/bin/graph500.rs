//! §III-C2: Graph500 — manual-polling reference vs HiPER with
//! `shmem_async_when`.
//!
//! The paper observes "little performance improvement to-date, [but] the
//! programmability benefits have been significant": the polling loop (and
//! its bookkeeping) disappears into a predicated task. This harness reports
//! both times (expect them close) and validates both BFS trees against a
//! serial oracle.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin graph500
//! env: HIPER_NODES_MAX (default 8), HIPER_G500_SCALE (default 11),
//!      HIPER_G500_EF (default 16), HIPER_REPS (default 3)
//! ```

use std::sync::Arc;

use hiper_bench::graph500::{self, G500Params};
use hiper_bench::util::{
    env_param, metrics_session, print_rank_stats, print_table, stats_enabled, summarize,
    trace_session, Timing,
};
use hiper_mpi::MpiModule;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;
use hiper_shmem::{ShmemModule, ShmemWorld};

fn run_g500(
    nodes: usize,
    params: G500Params,
    root: u64,
    oracle: Arc<Vec<u32>>,
    hiper: bool,
    reps: usize,
) -> (Timing, f64) {
    let world = ShmemWorld::new(nodes, 1 << 24);
    let results = SpmdBuilder::new(nodes)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            move |_r, t| {
                let shmem = ShmemModule::new(world.clone(), t.clone());
                let mpi = MpiModule::new(t);
                (
                    vec![
                        Arc::clone(&shmem) as Arc<dyn SchedulerModule>,
                        Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                    ],
                    (shmem, mpi),
                )
            },
            move |env, (shmem, mpi)| {
                let graph = Arc::new(graph500::build_graph(mpi.raw(), &params));
                let cap = graph500::mailbox_capacity(shmem.raw(), &graph);
                let arena = Arc::new(graph500::MailArena::alloc(shmem.raw(), cap));
                let mut samples = Vec::new();
                let mut teps = 0.0f64;
                for rep in 0..reps + 1 {
                    shmem.barrier_all();
                    let t0 = std::time::Instant::now();
                    let result = if hiper {
                        graph500::run_hiper(&shmem, &graph, &arena, root)
                    } else {
                        graph500::run_reference_polling(shmem.raw(), &graph, &arena, root)
                    };
                    shmem.barrier_all();
                    let dt = t0.elapsed().as_secs_f64();
                    assert!(
                        graph500::validate(&graph, &result, &oracle, root),
                        "BFS validation failed"
                    );
                    let total_relaxed = shmem.sum_to_all_u64(vec![result.edges_relaxed])[0];
                    teps = total_relaxed as f64 / dt;
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                if stats_enabled() {
                    print_rank_stats(&format!("graph500 rank {}", env.rank), &env.runtime);
                }
                (samples, teps)
            },
        );
    (summarize(&results[0].0), results[0].1)
}

fn main() {
    let _trace = trace_session();
    let _metrics = metrics_session();
    let nodes_max = env_param("HIPER_NODES_MAX", 8);
    let reps = env_param("HIPER_REPS", 3);
    let params = G500Params {
        scale: env_param("HIPER_G500_SCALE", 11) as u32,
        edge_factor: env_param("HIPER_G500_EF", 16),
        seed: 0x0601_7003,
    };
    println!("Graph500 BFS (paper §III-C2)");
    println!(
        "scale {} ({} vertices, {} edges), reps={}",
        params.scale,
        params.nvertices(),
        params.nedges(),
        reps
    );
    let root = graph500::pick_root(&params);
    let oracle = Arc::new(graph500::serial_levels(&params, root));

    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= nodes_max {
        let (reference, teps_ref) = run_g500(nodes, params, root, Arc::clone(&oracle), false, reps);
        let (hiper, teps_hiper) = run_g500(nodes, params, root, Arc::clone(&oracle), true, reps);
        println!(
            "  {} nodes: {:.2} MTEPS (polling) vs {:.2} MTEPS (async_when)",
            nodes,
            teps_ref / 1e6,
            teps_hiper / 1e6
        );
        rows.push((nodes, vec![reference, hiper]));
        nodes *= 2;
    }
    print_table(
        "Graph500 BFS time (lower is better; both trees validated)",
        "nodes",
        &["Reference (polling)", "HiPER (shmem_async_when)"],
        &rows,
    );
    println!(
        "\nProgrammability: the reference's per-level polling loop (flags, seen[],\n\
         remaining counter, spin) is replaced by one shmem_async_when registration\n\
         per source — the polling lives in the HiPER runtime."
    );
}
