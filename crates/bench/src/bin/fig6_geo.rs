//! Figure 6: GEO weak scaling — blocking MPI+CUDA reference vs HiPER.
//!
//! Weak scaling: each rank keeps a fixed slab of the 3-D stencil grid on
//! its (simulated) GPU. The paper reports HiPER "consistently improves
//! performance by ~2% on average by reducing blocking CUDA operations
//! through future-based programming"; here the same effect appears as the
//! gap between the blocking reference and the future-composed version.
//!
//! ```text
//! cargo run --release -p hiper-bench --bin fig6_geo
//! env: HIPER_NODES_MAX (default 8), HIPER_GEO_N (default 24, plane side),
//!      HIPER_GEO_STEPS (default 8), HIPER_REPS (default 3)
//! ```

use std::sync::Arc;

use hiper_bench::geo::{self, GeoParams};
use hiper_bench::util::{
    env_param, metrics_session, print_rank_stats, print_table, stats_enabled, summarize,
    trace_session, Timing,
};
use hiper_gpu::GpuModule;
use hiper_mpi::MpiModule;
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;

/// GEO models a bandwidth-hungry production fabric: latency is scaled up
/// relative to the default so that blocking-communication cost dominates
/// single-host scheduling noise (the paper's Titan interconnect is likewise
/// slow relative to its CPUs). Identical for both implementations.
fn geo_net() -> NetConfig {
    NetConfig {
        latency: std::time::Duration::from_micros(250),
        bandwidth: 2.0e9,
        self_latency: std::time::Duration::from_micros(2),
        ..NetConfig::default()
    }
}

fn run_geo(nodes: usize, params: GeoParams, hiper: bool, reps: usize) -> (Timing, f64) {
    let results = SpmdBuilder::new(nodes)
        .net(geo_net())
        .platform(|_| hiper_platform::autogen::smp_with_gpus(2, 1))
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                let gpu = GpuModule::new();
                (
                    vec![
                        Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                        Arc::clone(&gpu) as Arc<dyn SchedulerModule>,
                    ],
                    (mpi, gpu),
                )
            },
            move |env, (mpi, gpu)| {
                let mut samples = Vec::new();
                let mut checksum = 0.0f64;
                for rep in 0..reps + 1 {
                    mpi.barrier();
                    let t0 = std::time::Instant::now();
                    let (_slabs, interior) = if hiper {
                        geo::run_hiper(&mpi, &gpu, &params, env.rank, env.nranks)
                    } else {
                        geo::run_reference(&mpi, &gpu, &params, env.rank, env.nranks)
                    };
                    mpi.barrier();
                    let dt = t0.elapsed().as_secs_f64();
                    let local: f64 = interior.iter().map(|v| v * v).sum();
                    checksum = mpi.allreduce(&[local], hiper_mpi::ReduceOp::Sum)[0];
                    if rep > 0 {
                        samples.push(dt);
                    }
                }
                if stats_enabled() {
                    print_rank_stats(&format!("geo rank {}", env.rank), &env.runtime);
                }
                (samples, checksum)
            },
        );
    (summarize(&results[0].0), results[0].1)
}

fn main() {
    let _trace = trace_session();
    let _metrics = metrics_session();
    let nodes_max = env_param("HIPER_NODES_MAX", 8);
    let n = env_param("HIPER_GEO_N", 24);
    let steps = env_param("HIPER_GEO_STEPS", 8);
    let reps = env_param("HIPER_REPS", 3);
    let params = GeoParams {
        nx: n,
        ny: n,
        nz: n,
        steps,
    };
    println!("GEO weak scaling (paper Fig. 6)");
    println!(
        "slab {}x{}x{} per rank, {} steps, reps={}",
        n, n, n, steps, reps
    );

    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= nodes_max {
        let (reference, ck_ref) = run_geo(nodes, params, false, reps);
        let (hiper, ck_hiper) = run_geo(nodes, params, true, reps);
        assert!(
            (ck_ref - ck_hiper).abs() <= 1e-9 * ck_ref.abs().max(1e-30),
            "implementations disagree: {} vs {}",
            ck_ref,
            ck_hiper
        );
        rows.push((nodes, vec![reference, hiper]));
        nodes *= 2;
    }
    print_table(
        "GEO time per run (lower is better; both implementations verified equal)",
        "nodes",
        &["MPI+CUDA (blocking)", "HiPER (futures)"],
        &rows,
    );
    for (nodes, r) in &rows {
        let gain = 100.0 * (1.0 - r[1].mean / r[0].mean);
        println!("  {} nodes: HiPER {:+.1}% vs reference", nodes, gain);
    }
}
