//! Graph500 — distributed breadth-first search (paper §III-C2).
//!
//! A Kronecker (R-MAT) graph of `2^scale` vertices with edge factor 16 is
//! partitioned 1-D (vertex `v` lives on rank `v % P`); BFS proceeds level-
//! synchronously, with discovered remote vertices shipped to their owners
//! through one-sided puts into per-source mailboxes in the symmetric heap.
//!
//! The two implementations differ exactly where the paper says they do:
//!
//! * [`run_reference_polling`] — the receiving rank **spins polling** each
//!   source's arrival flag every level ("Both the reference Graph 500
//!   implementations and [18] must constantly poll for incoming data. This
//!   polling adds overhead, and significantly complicates the
//!   implementation.").
//! * [`run_hiper`] — the arrival processing is a task predicated on the
//!   flag via **`shmem_async_when`**, offloading the polling to the HiPER
//!   runtime; batches are processed as they land, overlapping later
//!   arrivals.
//!
//! Validation follows the Graph500 rules: the parent of the root is the
//! root, every tree edge exists in the graph, and BFS levels agree exactly
//! with a serial oracle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use hiper_mpi::RawComm;
use hiper_runtime::api;
use hiper_shmem::{Cmp, RawShmem, ShmemModule, SymPtr};

/// Graph parameters.
#[derive(Debug, Clone, Copy)]
pub struct G500Params {
    /// `2^scale` vertices.
    pub scale: u32,
    /// Edges = `edge_factor * 2^scale`.
    pub edge_factor: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for G500Params {
    fn default() -> Self {
        G500Params {
            scale: 10,
            edge_factor: 16,
            seed: 0x0601_7003,
        }
    }
}

impl G500Params {
    /// Global vertex count.
    pub fn nvertices(&self) -> u64 {
        1 << self.scale
    }

    /// Global edge count.
    pub fn nedges(&self) -> usize {
        self.edge_factor << self.scale
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates edge `index` of the Kronecker graph (deterministic).
/// R-MAT probabilities A=0.57, B=0.19, C=0.19, D=0.05 (Graph500 spec).
pub fn kronecker_edge(params: &G500Params, index: usize) -> (u64, u64) {
    let mut state = params
        .seed
        .wrapping_add((index as u64 + 1).wrapping_mul(0xff51_afd7_ed55_8ccd));
    let (mut u, mut v) = (0u64, 0u64);
    for _ in 0..params.scale {
        u <<= 1;
        v <<= 1;
        let r = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        if r < 0.57 {
            // quadrant A: (0, 0)
        } else if r < 0.76 {
            v |= 1; // B: (0, 1)
        } else if r < 0.95 {
            u |= 1; // C: (1, 0)
        } else {
            u |= 1;
            v |= 1; // D: (1, 1)
        }
    }
    (u, v)
}

/// The rank-local part of the distributed graph (CSR over owned vertices).
pub struct LocalGraph {
    /// Global vertex count.
    pub nglobal: u64,
    /// This rank.
    pub rank: usize,
    /// Rank count.
    pub nranks: usize,
    /// CSR offsets over owned vertices (local index `v / P`).
    pub offsets: Vec<usize>,
    /// Neighbor (global) vertex ids.
    pub adj: Vec<u64>,
}

impl LocalGraph {
    /// Owner rank of a global vertex.
    pub fn owner(&self, v: u64) -> usize {
        (v % self.nranks as u64) as usize
    }

    /// Local index of an owned global vertex.
    pub fn local_of(&self, v: u64) -> usize {
        (v / self.nranks as u64) as usize
    }

    /// Number of vertices owned by this rank.
    pub fn nowned(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Global id of local vertex `l`.
    pub fn global_of(&self, l: usize) -> u64 {
        l as u64 * self.nranks as u64 + self.rank as u64
    }

    /// Neighbors of owned local vertex `l`.
    pub fn neighbors(&self, l: usize) -> &[u64] {
        &self.adj[self.offsets[l]..self.offsets[l + 1]]
    }
}

/// Builds the distributed graph: each rank generates its share of edges and
/// exchanges endpoint records with the owners (construction is not timed in
/// the harness, matching the benchmark rules).
pub fn build_graph(comm: &RawComm, params: &G500Params) -> LocalGraph {
    let p = comm.nranks();
    let me = comm.rank();
    let total = params.nedges();
    let per = total.div_ceil(p);
    let lo = me * per;
    let hi = ((me + 1) * per).min(total);

    // Outgoing records: for edge (u,v), owner(u) gets (u,v) and owner(v)
    // gets (v,u); self-loops dropped.
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    for i in lo..hi {
        let (u, v) = kronecker_edge(params, i);
        if u == v {
            continue;
        }
        outgoing[(u % p as u64) as usize].extend_from_slice(&[u, v]);
        outgoing[(v % p as u64) as usize].extend_from_slice(&[v, u]);
    }
    let incoming = comm.alltoallv_vec::<u64>(outgoing);

    let nglobal = params.nvertices();
    let nowned = (nglobal as usize).div_ceil(p)
        - if !(nglobal as usize).is_multiple_of(p) && me >= nglobal as usize % p {
            1
        } else {
            0
        };
    // Dense local adjacency build.
    let mut lists: Vec<Vec<u64>> = vec![Vec::new(); nowned];
    for part in incoming {
        for pair in part.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            debug_assert_eq!((u % p as u64) as usize, me);
            lists[(u / p as u64) as usize].push(v);
        }
    }
    let mut offsets = Vec::with_capacity(nowned + 1);
    let mut adj = Vec::new();
    offsets.push(0);
    for mut list in lists {
        list.sort_unstable();
        adj.append(&mut list);
        offsets.push(adj.len());
    }
    LocalGraph {
        nglobal,
        rank: me,
        nranks: p,
        offsets,
        adj,
    }
}

/// BFS output: per owned vertex, parent (u64::MAX = unreached) and level.
#[derive(Debug)]
pub struct BfsResult {
    /// Parent of each owned vertex (global id), `u64::MAX` if unreached.
    pub parent: Vec<u64>,
    /// BFS level of each owned vertex, `u32::MAX` if unreached.
    pub level: Vec<u32>,
    /// Edges relaxed (for TEPS).
    pub edges_relaxed: u64,
}

/// Mailbox arena in the symmetric heap: per source rank, a flag word and a
/// pair buffer. Allocated collectively.
pub struct MailArena {
    flags: SymPtr,
    bufs: Vec<SymPtr>,
    cap_pairs: usize,
}

impl MailArena {
    /// Collective allocation. `cap_pairs` bounds pairs sent by one source
    /// in one level (callers size it from the local adjacency maximum,
    /// allreduced).
    pub fn alloc(raw: &RawShmem, cap_pairs: usize) -> MailArena {
        let p = raw.nranks();
        let flags = raw.malloc64(p);
        let bufs = (0..p).map(|_| raw.malloc64(cap_pairs * 2)).collect();
        MailArena {
            flags,
            bufs,
            cap_pairs,
        }
    }

    fn reset(&self, raw: &RawShmem) {
        for s in 0..raw.nranks() {
            raw.heap().store_i64(self.flags.at64(s), -1);
        }
    }
}

/// Per-level send phase shared by both implementations: pack (vertex,
/// parent) pairs per owner and put them, then set the arrival flag.
fn send_discoveries(
    raw: &RawShmem,
    graph: &LocalGraph,
    arena: &MailArena,
    frontier: &[usize],
    edges_relaxed: &mut u64,
) {
    let p = graph.nranks;
    let me = graph.rank;
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
    for &l in frontier {
        let u = graph.global_of(l);
        for &v in graph.neighbors(l) {
            *edges_relaxed += 1;
            out[graph.owner(v)].extend_from_slice(&[v, u]);
        }
    }
    for (t, pairs) in out.into_iter().enumerate() {
        assert!(
            pairs.len() / 2 <= arena.cap_pairs,
            "mailbox overflow: {} pairs > cap {}",
            pairs.len() / 2,
            arena.cap_pairs
        );
        if !pairs.is_empty() {
            raw.put64(t, arena.bufs[me].offset, &pairs);
        }
        // FIFO per pair guarantees the data lands before the flag.
        raw.put64(t, arena.flags.at64(me), &[(pairs.len() / 2) as u64]);
    }
}

/// Applies one source's batch: claim unvisited vertices.
fn apply_batch(
    graph: &LocalGraph,
    parent: &mut [u64],
    level: &mut [u32],
    next: &mut Vec<usize>,
    depth: u32,
    pairs: &[u64],
) {
    for pair in pairs.chunks_exact(2) {
        let (v, from) = (pair[0], pair[1]);
        let l = graph.local_of(v);
        if parent[l] == u64::MAX {
            parent[l] = from;
            level[l] = depth;
            next.push(l);
        }
    }
}

fn read_batch(raw: &RawShmem, arena: &MailArena, src: usize, npairs: usize) -> Vec<u64> {
    let mut bytes = vec![0u8; npairs * 2 * 8];
    raw.heap().read_bytes(arena.bufs[src].offset, &mut bytes);
    hiper_netsim::pod::from_bytes(&bytes)
}

/// The reference implementation: manual polling of the arrival flags.
pub fn run_reference_polling(
    raw: &Arc<RawShmem>,
    graph: &LocalGraph,
    arena: &MailArena,
    root: u64,
) -> BfsResult {
    let p = graph.nranks;
    let mut parent = vec![u64::MAX; graph.nowned()];
    let mut level = vec![u32::MAX; graph.nowned()];
    let mut frontier: Vec<usize> = Vec::new();
    let mut edges_relaxed = 0u64;
    if graph.owner(root) == graph.rank {
        let l = graph.local_of(root);
        parent[l] = root;
        level[l] = 0;
        frontier.push(l);
    }

    let mut depth = 1u32;
    loop {
        arena.reset(raw);
        raw.barrier_all();
        send_discoveries(raw, graph, arena, &frontier, &mut edges_relaxed);
        // --- the polling loop the paper complains about ---
        let mut next = Vec::new();
        let mut seen = vec![false; p];
        let mut remaining = p;
        while remaining > 0 {
            for (s, seen_s) in seen.iter_mut().enumerate() {
                if !*seen_s {
                    let flag = raw.heap().load_i64(arena.flags.at64(s));
                    if flag >= 0 {
                        *seen_s = true;
                        remaining -= 1;
                        if flag > 0 {
                            let pairs = read_batch(raw, arena, s, flag as usize);
                            apply_batch(graph, &mut parent, &mut level, &mut next, depth, &pairs);
                        }
                    }
                }
            }
            // Polling burns the core; yield so the (shared) machine can
            // still deliver traffic — as a real NIC-polling loop would
            // relinquish the bus between probes.
            std::thread::yield_now();
        }
        raw.barrier_all();
        // Global termination: any next-frontier anywhere?
        let totals = raw.sum_to_all_u64(&[next.len() as u64]);
        if totals[0] == 0 {
            break;
        }
        frontier = next;
        depth += 1;
    }
    BfsResult {
        parent,
        level,
        edges_relaxed,
    }
}

/// The HiPER implementation: `shmem_async_when` tasks replace the polling
/// loop; each source's batch is processed the moment its flag lands.
pub fn run_hiper(
    shmem: &Arc<ShmemModule>,
    graph: &Arc<LocalGraph>,
    arena: &Arc<MailArena>,
    root: u64,
) -> BfsResult {
    let raw = Arc::clone(shmem.raw());
    let p = graph.nranks;
    let mut parent = vec![u64::MAX; graph.nowned()];
    let mut level = vec![u32::MAX; graph.nowned()];
    let mut frontier: Vec<usize> = Vec::new();
    let mut edges_relaxed = 0u64;
    if graph.owner(root) == graph.rank {
        let l = graph.local_of(root);
        parent[l] = root;
        level[l] = 0;
        frontier.push(l);
    }

    let mut depth = 1u32;
    loop {
        arena.reset(&raw);
        shmem.barrier_all();
        send_discoveries(&raw, graph, arena, &frontier, &mut edges_relaxed);

        // Claims are funneled through per-level shared state (parent vector,
        // level vector, next-frontier accumulator); each arrival batch is an
        // independent task released by shmem_async_when.
        type LevelClaims = (Vec<u64>, Vec<u32>, Vec<usize>);
        let claims: Arc<parking_lot::Mutex<LevelClaims>> = Arc::new(parking_lot::Mutex::new((
            std::mem::take(&mut parent),
            std::mem::take(&mut level),
            Vec::new(),
        )));
        api::finish(|| {
            for s in 0..p {
                let raw = Arc::clone(&raw);
                let graph = Arc::clone(graph);
                let arena = Arc::clone(arena);
                let claims = Arc::clone(&claims);
                // The novel API (§II-C2): execution predicated on the
                // remote put of the arrival flag.
                shmem.async_when(arena.flags.at64(s), Cmp::Ge, 0, move || {
                    let flag = raw.heap().load_i64(arena.flags.at64(s));
                    if flag > 0 {
                        let pairs = read_batch(&raw, &arena, s, flag as usize);
                        let mut guard = claims.lock();
                        let (parent, level, next) = &mut *guard;
                        apply_batch(&graph, parent, level, next, depth, &pairs);
                    }
                });
            }
        })
        .expect("no task panicked");
        let (par, lev, next) = {
            let mut guard = claims.lock();
            (
                std::mem::take(&mut guard.0),
                std::mem::take(&mut guard.1),
                std::mem::take(&mut guard.2),
            )
        };
        parent = par;
        level = lev;
        shmem.barrier_all();
        let totals = shmem.sum_to_all_u64(vec![next.len() as u64]);
        if totals[0] == 0 {
            break;
        }
        frontier = next;
        depth += 1;
    }
    BfsResult {
        parent,
        level,
        edges_relaxed,
    }
}

/// Serial BFS oracle over the full edge list (levels only).
pub fn serial_levels(params: &G500Params, root: u64) -> Vec<u32> {
    let n = params.nvertices() as usize;
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for i in 0..params.nedges() {
        let (u, v) = kronecker_edge(params, i);
        if u != v {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut level = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::from([root]);
    level[root as usize] = 0;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Picks the deterministic BFS root: the smallest vertex with nonzero
/// degree.
pub fn pick_root(params: &G500Params) -> u64 {
    let mut degree: HashMap<u64, u32> = HashMap::new();
    for i in 0..params.nedges() {
        let (u, v) = kronecker_edge(params, i);
        if u != v {
            *degree.entry(u).or_default() += 1;
            *degree.entry(v).or_default() += 1;
        }
    }
    (0..params.nvertices())
        .find(|v| degree.contains_key(v))
        .expect("graph has at least one edge")
}

/// Graph500-style validation of a distributed BFS result. Call on every
/// rank; checks this rank's owned vertices against the serial oracle and
/// the tree-edge rules.
pub fn validate(graph: &LocalGraph, result: &BfsResult, oracle_levels: &[u32], root: u64) -> bool {
    for l in 0..graph.nowned() {
        let v = graph.global_of(l);
        let expect = oracle_levels[v as usize];
        if result.level[l] != expect {
            eprintln!(
                "vertex {} level mismatch: got {}, oracle {}",
                v, result.level[l], expect
            );
            return false;
        }
        if expect == u32::MAX {
            if result.parent[l] != u64::MAX {
                return false;
            }
            continue;
        }
        if v == root {
            if result.parent[l] != root {
                return false;
            }
            continue;
        }
        // Tree edge must exist: parent is a graph neighbor, one level up.
        let par = result.parent[l];
        if !graph.neighbors(l).contains(&par) {
            eprintln!("vertex {}: parent {} is not a neighbor", v, par);
            return false;
        }
        if oracle_levels[par as usize] + 1 != expect {
            eprintln!("vertex {}: parent {} not one level up", v, par);
            return false;
        }
    }
    true
}

/// Computes the capacity (pairs per source per level) needed for the
/// mailboxes: the global max, over (source, target) pairs, of edges from
/// one source's vertices to one target.
pub fn mailbox_capacity(raw: &RawShmem, graph: &LocalGraph) -> usize {
    let mut per_target = vec![0u64; graph.nranks];
    for l in 0..graph.nowned() {
        for &v in graph.neighbors(l) {
            per_target[graph.owner(v)] += 1;
        }
    }
    let local_max = AtomicI64::new(*per_target.iter().max().unwrap_or(&0) as i64);
    let global = raw.max_to_all_i64(&[local_max.load(Ordering::Relaxed)]);
    (global[0].max(1) as usize) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_netsim::{NetConfig, SpmdBuilder};
    use hiper_runtime::SchedulerModule;
    use hiper_shmem::ShmemWorld;

    fn tiny() -> G500Params {
        G500Params {
            scale: 7,
            edge_factor: 8,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let p = tiny();
        assert_eq!(kronecker_edge(&p, 0), kronecker_edge(&p, 0));
        assert_ne!(kronecker_edge(&p, 0), kronecker_edge(&p, 1));
        let (u, v) = kronecker_edge(&p, 5);
        assert!(u < p.nvertices() && v < p.nvertices());
    }

    #[test]
    fn serial_oracle_reaches_component() {
        let p = tiny();
        let root = pick_root(&p);
        let levels = serial_levels(&p, root);
        assert_eq!(levels[root as usize], 0);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
        assert!(reached > 1, "root is isolated");
    }

    fn run_distributed(nranks: usize, use_hiper: bool) {
        let params = tiny();
        let root = pick_root(&params);
        let oracle = Arc::new(serial_levels(&params, root));
        let world = ShmemWorld::new(nranks, 1 << 22);
        let oks = SpmdBuilder::new(nranks)
            .net(NetConfig::default())
            .workers_per_rank(2)
            .run(
                move |_r, t| {
                    let shmem = ShmemModule::new(world.clone(), t.clone());
                    let mpi = hiper_mpi::MpiModule::new(t);
                    (
                        vec![
                            Arc::clone(&shmem) as Arc<dyn SchedulerModule>,
                            Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                        ],
                        (shmem, mpi),
                    )
                },
                move |_env, (shmem, mpi)| {
                    let graph = Arc::new(build_graph(mpi.raw(), &params));
                    let cap = mailbox_capacity(shmem.raw(), &graph);
                    let arena = Arc::new(MailArena::alloc(shmem.raw(), cap));
                    let result = if use_hiper {
                        run_hiper(&shmem, &graph, &arena, root)
                    } else {
                        run_reference_polling(shmem.raw(), &graph, &arena, root)
                    };
                    validate(&graph, &result, &oracle, root)
                },
            );
        assert!(oks.into_iter().all(|ok| ok));
    }

    #[test]
    fn reference_bfs_matches_oracle() {
        run_distributed(3, false);
    }

    #[test]
    fn hiper_bfs_matches_oracle() {
        run_distributed(3, true);
    }

    #[test]
    fn single_rank_bfs() {
        run_distributed(1, true);
    }
}
