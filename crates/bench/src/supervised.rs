//! Supervised workload drivers: kill-mid-run recovery for ISx and UTS
//! (DESIGN.md §2.13).
//!
//! Each driver runs its workload as an iterative, barrier-delimited loop —
//! the cooperative crash-point discipline the supervise harness requires:
//!
//! ```text
//! per round: reset_alloc → workload round → barrier_all
//!            → checkpoint (raw state + digest + heap image) → crash_point
//! ```
//!
//! The checkpoint cut lands at a globally quiesced point (the barrier) and
//! the crash point immediately follows it, so the victim sends nothing
//! between cut and crash: replay re-executes the round from the restored
//! snapshot with zero pre-crash side effects on peers. Peer traffic
//! delivered after the cut is rolled back by the receive-watermark reset
//! and redelivered from the peers' retention logs, in per-link order.
//!
//! Digests are accumulated per round inside the checkpointed state, so a
//! killed-and-recovered run must reproduce the fault-free digest **bit for
//! bit** — that is the acceptance criterion `chaos_check --recovery`
//! enforces.
//!
//! Rank-count constraints: UTS steals via compare-and-swap, which does not
//! commute, so its supervised runs use 2 ranks — a single link per
//! direction makes replay serial and deterministic. ISx's boundary ops
//! (put at absolute offsets, fetch-add reservations) commute, so 4 ranks
//! are safe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hiper_checkpoint::CheckpointModule;
use hiper_netsim::{FaultPlan, KillSpec, NetConfig, SpmdBuilder, SupervisedCtx, SupervisorHarness};
use hiper_runtime::SchedulerModule;
use hiper_shmem::{ShmemModule, ShmemWorld};
use parking_lot::Mutex;

use crate::isx::{self, IsxParams};
use crate::uts::{self, UtsParams};

/// One supervised run's observables.
pub struct SupervisedOutcome {
    /// Per-rank digests, accumulated round by round inside the
    /// checkpointed state (so recovery replays reproduce them exactly).
    pub digest: Vec<Vec<u64>>,
    /// Recovery attempts driven for the victim rank (0 when no kill).
    pub recoveries: u32,
    /// `ranks_recovered` summed over every rank's scheduler stats.
    pub ranks_recovered: u64,
    /// Wall-clock for the cluster run.
    pub elapsed: Duration,
}

/// Workload plugged into [`run_supervised_rounds`]: one barrier-delimited
/// round producing that round's digest words.
type RoundFn = dyn Fn(&Arc<ShmemModule>, u64) -> Vec<u64> + Send + Sync;

/// The generic supervised loop shared by the ISx and UTS drivers.
fn run_supervised_rounds(
    name: &str,
    nranks: usize,
    heap_bytes: usize,
    rounds: u64,
    kill: Option<KillSpec>,
    round_fn: Arc<RoundFn>,
) -> SupervisedOutcome {
    let dir = std::env::temp_dir().join(format!("hiper_supervised_{}", name));
    let _ = std::fs::remove_dir_all(&dir);
    let world = ShmemWorld::new(nranks, heap_bytes);
    let victim = kill.as_ref().map(|k| k.rank);
    let harness = SupervisorHarness::new(nranks, kill, 4);
    let h_main = Arc::clone(&harness);
    let recovered = Arc::new(AtomicU64::new(0));
    let rec2 = Arc::clone(&recovered);
    let t0 = Instant::now();

    let digest = SpmdBuilder::new(nranks)
        .net(NetConfig::default())
        // Supervision arms the reliable layers (epochs, retention logs)
        // even though the plan itself injects nothing: the kill is driven
        // cooperatively by the seeded crash points.
        .faults(FaultPlan::seeded(0).arm())
        // figure2 has both the Interconnect place (SHMEM) and the
        // Nvm/LocalDisk places (checkpoints).
        .platform(|_| hiper_platform::autogen::figure2(1))
        .run(
            move |rank, transport| {
                let shmem = ShmemModule::new(world.clone(), transport);
                let ckpt = CheckpointModule::new(dir.join(format!("r{}", rank)));
                (
                    vec![
                        Arc::clone(&shmem) as Arc<dyn SchedulerModule>,
                        Arc::clone(&ckpt) as Arc<dyn SchedulerModule>,
                    ],
                    (shmem, ckpt),
                )
            },
            move |env, (shmem, ckpt)| {
                h_main.register(
                    env.rank,
                    env.runtime.clone(),
                    Arc::clone(shmem.raw().reliable()),
                    env.transport.engine(),
                );
                let ctx = SupervisedCtx::new(Arc::clone(&h_main), ckpt, env.rank);
                let raw = Arc::clone(shmem.raw());
                let heap = Arc::clone(shmem.heap());
                // Allocation watermark after module init: every round
                // resets to it, so replayed rounds allocate identical
                // addresses.
                let base_alloc = raw.alloc_watermark();
                // Checkpointed application state: (next round, digest).
                let state = Mutex::new((0u64, Vec::<u64>::new()));
                let round_fn = Arc::clone(&round_fn);
                let shmem2 = Arc::clone(&shmem);

                let digest = ctx
                    .run_supervised(
                        |bytes| {
                            // Layout: [raw_len u64][raw][next u64]
                            //         [dlen u64][digest..][heap..]
                            let rd = |off: usize| {
                                u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
                            };
                            let raw_len = rd(0) as usize;
                            raw.restore_state(&bytes[8..8 + raw_len]);
                            let mut off = 8 + raw_len;
                            let next = rd(off);
                            let dlen = rd(off + 8) as usize;
                            off += 16;
                            let digest: Vec<u64> = (0..dlen).map(|i| rd(off + i * 8)).collect();
                            off += dlen * 8;
                            heap.write_bytes(0, &bytes[off..]);
                            *state.lock() = (next, digest);
                        },
                        |_attempt| {
                            let dbg = hiper_netsim::supervise::debug_enabled();
                            while state.lock().0 < rounds {
                                let round = state.lock().0;
                                if dbg {
                                    eprintln!("[sup r{}] round {} start", env.rank, round);
                                }
                                raw.reset_alloc(base_alloc);
                                let d = round_fn(&shmem2, round);
                                if dbg {
                                    eprintln!(
                                        "[sup r{}] round {} computed; barrier",
                                        env.rank, round
                                    );
                                }
                                shmem2.barrier_all();
                                {
                                    let mut st = state.lock();
                                    st.1.extend(d);
                                    st.0 += 1;
                                }
                                ctx.checkpoint(|| {
                                    let raw_img = raw.state_snapshot();
                                    let (next, ref digest) = *state.lock();
                                    let mut out = Vec::with_capacity(
                                        24 + raw_img.len() + digest.len() * 8 + heap.len(),
                                    );
                                    out.extend_from_slice(&(raw_img.len() as u64).to_le_bytes());
                                    out.extend_from_slice(&raw_img);
                                    out.extend_from_slice(&next.to_le_bytes());
                                    out.extend_from_slice(&(digest.len() as u64).to_le_bytes());
                                    for d in digest {
                                        out.extend_from_slice(&d.to_le_bytes());
                                    }
                                    let mut img = vec![0u8; heap.len()];
                                    heap.read_bytes(0, &mut img);
                                    out.extend_from_slice(&img);
                                    out
                                });
                                if dbg {
                                    eprintln!("[sup r{}] round {} checkpointed", env.rank, round);
                                }
                                ctx.crash_point();
                            }
                            state.lock().1.clone()
                        },
                    )
                    .expect("supervised recovery must succeed");
                let snap = env.runtime.stats().snapshot();
                rec2.fetch_add(snap.ranks_recovered, Ordering::Relaxed);
                digest
            },
        );

    let elapsed = t0.elapsed();
    // Break the harness ↔ engine cycle so this run's reliable endpoints
    // (and their retry threads) die with it instead of piling up across
    // the grid.
    harness.shutdown();

    SupervisedOutcome {
        digest,
        recoveries: victim
            .map(|v| harness.supervisor().attempts(v as u32))
            .unwrap_or(0),
        ranks_recovered: recovered.load(Ordering::Relaxed),
        elapsed,
    }
}

/// ISx parameters for the recovery grid (small enough that a multi-round
/// supervised run stays fast; the digest is the full sorted key array).
pub fn isx_recovery_params() -> IsxParams {
    IsxParams {
        keys_per_rank: 2048,
        key_max: 1 << 16,
        ..Default::default()
    }
}

/// Supervised ISx: 4 ranks, `rounds` bucket sorts, a seeded kill-mid-run
/// schedule (or `None` for the fault-free baseline). The digest must be
/// bit-identical either way.
pub fn run_supervised_isx(kill: Option<KillSpec>, rounds: u64) -> SupervisedOutcome {
    let params = isx_recovery_params();
    run_supervised_rounds(
        "isx",
        4,
        1 << 19,
        rounds,
        kill,
        Arc::new(move |shmem: &Arc<ShmemModule>, _round: u64| {
            isx::run_hiper(shmem, &params).sorted
        }),
    )
}

/// UTS parameters for the recovery grid.
pub fn uts_recovery_params() -> UtsParams {
    UtsParams {
        max_depth: 9,
        ..Default::default()
    }
}

/// Supervised UTS: 2 ranks (single link per direction — steal replay must
/// be serial, see the module docs), `rounds` tree counts. The digest is
/// each round's global node count, which must match both the fault-free
/// baseline and the sequential oracle.
pub fn run_supervised_uts(kill: Option<KillSpec>, rounds: u64) -> SupervisedOutcome {
    let params = uts_recovery_params();
    run_supervised_rounds(
        "uts",
        2,
        1 << 22,
        rounds,
        kill,
        Arc::new(move |shmem: &Arc<ShmemModule>, _round: u64| {
            vec![uts::run_hiper(shmem, &params).global_count]
        }),
    )
}
