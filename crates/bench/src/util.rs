//! Shared harness utilities: repetition with confidence intervals and
//! paper-style table printing.

use std::time::{Duration, Instant};

/// Summary statistics over repeated timings.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Mean wall-clock seconds.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (seconds).
    pub ci95: f64,
    /// Number of repetitions.
    pub reps: usize,
}

impl Timing {
    /// Mean as a `Duration`.
    pub fn mean_duration(&self) -> Duration {
        Duration::from_secs_f64(self.mean)
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.mean >= 1.0 {
            write!(f, "{:7.3} s ±{:.3}", self.mean, self.ci95)
        } else {
            write!(f, "{:7.2} ms ±{:.2}", self.mean * 1e3, self.ci95 * 1e3)
        }
    }
}

/// Times `f` `reps` times (after `warmup` unrecorded runs) and reports the
/// mean with a 95% confidence interval, as in the paper ("all tests are
/// repeated ... error bars represent 95% confidence intervals").
pub fn time_reps(reps: usize, warmup: usize, mut f: impl FnMut()) -> Timing {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    summarize(&samples)
}

/// Mean + 95% CI of raw samples.
pub fn summarize(samples: &[f64]) -> Timing {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    // t-value ≈ 1.96 for large n; use a small-sample table for the usual
    // rep counts.
    let t = match samples.len() {
        0 | 1 => 0.0,
        2 => 12.71,
        3 => 4.30,
        4 => 3.18,
        5 => 2.78,
        6 => 2.57,
        7 => 2.45,
        8 => 2.36,
        9 => 2.31,
        10 => 2.26,
        _ => 1.96,
    };
    Timing {
        mean,
        ci95: t * (var / n).sqrt(),
        reps: samples.len(),
    }
}

/// Prints a paper-style results table: one row per x-value (node count),
/// one column per implementation.
pub fn print_table(title: &str, xlabel: &str, columns: &[&str], rows: &[(usize, Vec<Timing>)]) {
    println!("\n=== {} ===", title);
    print!("{:>8}", xlabel);
    for c in columns {
        print!("  {:>22}", c);
    }
    println!();
    for (x, timings) in rows {
        print!("{:>8}", x);
        for t in timings {
            print!("  {:>22}", t.to_string());
        }
        println!();
    }
}

/// Reads an integer benchmark parameter from the environment (so harness
/// scale can be adjusted without recompiling), with a default.
pub fn env_param(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Starts a tracing session when `--trace <out.json>` (or `HIPER_TRACE`)
/// was given. Hold the returned guard for the whole run; dropping it drains
/// all rings and writes the Chrome-trace file.
pub fn trace_session() -> Option<hiper_trace::TraceSession> {
    hiper_trace::session_from_env_args()
}

/// Starts a metrics session when `--metrics[=FILE]` (or `HIPER_METRICS`)
/// was given. Hold the returned guard for the whole run; dropping it
/// disables collection and writes the OpenMetrics dump to the file (or
/// stderr when no file was named).
pub fn metrics_session() -> Option<hiper_metrics::MetricsSession> {
    hiper_metrics::session_from_env_args()
}

/// True when `--stats` was passed (or `HIPER_STATS` is set to anything but
/// `0`): harness binaries then print per-rank scheduler and module counters.
pub fn stats_enabled() -> bool {
    std::env::args().any(|a| a == "--stats")
        || std::env::var("HIPER_STATS").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Prints one rank's scheduler counters ([`SchedStatsSnapshot`] Display)
/// and per-module call/time totals to stderr, prefixed with `tag`.
///
/// [`SchedStatsSnapshot`]: hiper_runtime::SchedStatsSnapshot
pub fn print_rank_stats(tag: &str, rt: &hiper_runtime::Runtime) {
    eprintln!("[stats {}] sched: {}", tag, rt.sched_stats());
    for (module, calls, total) in rt.module_stats().snapshot() {
        eprintln!(
            "[stats {}] module {}: {} calls, {:?} total",
            tag, module, calls, total
        );
    }
    let dropped = hiper_trace::rings_dropped();
    if dropped > 0 {
        eprintln!(
            "[stats {}] trace: WARNING {} event(s) dropped by ring wraparound \
             (trace incomplete; raise HIPER_TRACE_BUF)",
            tag, dropped
        );
    }
}

/// Prints the cluster-wide network counters ([`NetStatsSnapshot`] Display)
/// to stderr, prefixed with `tag`. Under fault injection this includes
/// dropped/duplicated wire messages and handler panics.
///
/// [`NetStatsSnapshot`]: hiper_netsim::NetStatsSnapshot
pub fn print_net_stats(tag: &str, transport: &hiper_netsim::Transport) {
    eprintln!("[stats {}] net: {}", tag, transport.net_stats());
}

/// Prints one endpoint's reliable-layer counters
/// ([`ReliableStatsSnapshot`] Display: retries, coalesced frames,
/// piggybacked/standalone acks, payload copies avoided) to stderr,
/// prefixed with `tag`.
///
/// [`ReliableStatsSnapshot`]: hiper_netsim::ReliableStatsSnapshot
pub fn print_reliable_stats(tag: &str, transport: &hiper_netsim::ReliableTransport) {
    eprintln!("[stats {}] reliable: {}", tag, transport.stats());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_single_sample() {
        let t = summarize(&[0.5]);
        assert_eq!(t.mean, 0.5);
        assert_eq!(t.ci95, 0.0);
    }

    #[test]
    fn summarize_constant_samples_has_zero_ci() {
        let t = summarize(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(t.mean, 1.0);
        assert!(t.ci95 < 1e-12);
    }

    #[test]
    fn summarize_known_variance() {
        let t = summarize(&[1.0, 3.0]);
        assert_eq!(t.mean, 2.0);
        // s = sqrt(2), se = 1, t=12.71
        assert!((t.ci95 - 12.71).abs() < 1e-9);
    }

    #[test]
    fn time_reps_measures() {
        let t = time_reps(3, 1, || std::thread::sleep(Duration::from_millis(5)));
        assert!(t.mean >= 0.004, "{:?}", t);
        assert_eq!(t.reps, 3);
    }

    #[test]
    fn env_param_default_and_override() {
        assert_eq!(env_param("HIPER_BENCH_NO_SUCH_VAR", 7), 7);
        std::env::set_var("HIPER_BENCH_TEST_VAR", "42");
        assert_eq!(env_param("HIPER_BENCH_TEST_VAR", 7), 42);
    }

    #[test]
    fn timing_display_switches_units() {
        let ms = Timing {
            mean: 0.05,
            ci95: 0.001,
            reps: 3,
        };
        assert!(ms.to_string().contains("ms"));
        let s = Timing {
            mean: 2.0,
            ci95: 0.1,
            reps: 3,
        };
        assert!(s.to_string().contains(" s "));
    }
}
