//! Property-based model tests: the deque, driven single-threaded through an
//! arbitrary sequence of operations, must behave exactly like a reference
//! `VecDeque` (push-back/pop-back for the owner, pop-front for the thief).

use std::collections::VecDeque;

use hiper_deque::{new_deque, Steal, MAX_BATCH};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        2 => Just(Op::Steal),
    ]
}

#[derive(Debug, Clone)]
enum BatchOp {
    Push(u64),
    Pop,
    Steal,
    BatchSteal,
    /// Pop from the thief's destination deque (where batch extras land).
    DestPop,
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        4 => any::<u64>().prop_map(BatchOp::Push),
        2 => Just(BatchOp::Pop),
        1 => Just(BatchOp::Steal),
        2 => Just(BatchOp::BatchSteal),
        2 => Just(BatchOp::DestPop),
    ]
}

proptest! {
    #[test]
    fn matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let (w, s) = new_deque::<u64>();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        // Single-threaded: Retry is impossible.
                        Steal::Retry => panic!("retry without contention"),
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }

    #[test]
    fn injector_matches_fifo_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let q = hiper_deque::Injector::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                // Injector has a single consumption end; treat Pop and Steal
                // the same.
                Op::Pop | Op::Steal => {
                    prop_assert_eq!(q.steal().success(), model.pop_front());
                }
            }
        }
    }

    /// Batch steals must take exactly `min((len + 1) / 2, MAX_BATCH)` tasks
    /// off the victim's FIFO end: the first comes back to the caller, the
    /// rest are banked in the destination deque in steal order.
    #[test]
    fn batch_steal_matches_two_deque_model(ops in proptest::collection::vec(batch_op_strategy(), 1..400)) {
        let (victim, thief) = new_deque::<u64>();
        let (dest, _dest_stealer) = new_deque::<u64>();
        let mut vmodel: VecDeque<u64> = VecDeque::new();
        let mut dmodel: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                BatchOp::Push(v) => {
                    victim.push(v);
                    vmodel.push_back(v);
                }
                BatchOp::Pop => {
                    prop_assert_eq!(victim.pop(), vmodel.pop_back());
                }
                BatchOp::Steal => {
                    let got = match thief.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("retry without contention"),
                    };
                    prop_assert_eq!(got, vmodel.pop_front());
                }
                BatchOp::BatchSteal => {
                    let got = match thief.steal_batch_and_pop(&dest) {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("retry without contention"),
                    };
                    let target = vmodel.len().div_ceil(2).min(MAX_BATCH);
                    prop_assert_eq!(got, vmodel.pop_front());
                    for _ in 1..target {
                        dmodel.push_back(vmodel.pop_front().unwrap());
                    }
                }
                BatchOp::DestPop => {
                    // The destination is the thief's own deque: LIFO pops.
                    prop_assert_eq!(dest.pop(), dmodel.pop_back());
                }
            }
            prop_assert_eq!(victim.len(), vmodel.len());
            prop_assert_eq!(dest.len(), dmodel.len());
        }
        // Nothing was lost or duplicated: drain both deques and compare.
        while let Some(v) = victim.pop() {
            prop_assert_eq!(Some(v), vmodel.pop_back());
        }
        prop_assert!(vmodel.is_empty());
        while let Some(v) = dest.pop() {
            prop_assert_eq!(Some(v), dmodel.pop_back());
        }
        prop_assert!(dmodel.is_empty());
    }

    /// Injector batch drains must preserve FIFO order end to end: take the
    /// first `min(len, max)` queued items, return the oldest, bank the rest.
    #[test]
    fn injector_batch_matches_fifo_model(
        ops in proptest::collection::vec(batch_op_strategy(), 1..400),
        max in 1usize..8,
    ) {
        let q = hiper_deque::Injector::new();
        let (dest, _dest_stealer) = new_deque::<u64>();
        let mut qmodel: VecDeque<u64> = VecDeque::new();
        let mut dmodel: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                BatchOp::Push(v) => {
                    q.push(v);
                    qmodel.push_back(v);
                }
                BatchOp::Pop | BatchOp::Steal => {
                    prop_assert_eq!(q.steal().success(), qmodel.pop_front());
                }
                BatchOp::BatchSteal => {
                    let got = q.steal_batch_and_pop(&dest, max).success();
                    let take = qmodel.len().min(max);
                    prop_assert_eq!(got, qmodel.pop_front());
                    for _ in 1..take {
                        dmodel.push_back(qmodel.pop_front().unwrap());
                    }
                }
                BatchOp::DestPop => {
                    prop_assert_eq!(dest.pop(), dmodel.pop_back());
                }
            }
            prop_assert_eq!(q.is_empty(), qmodel.is_empty());
            prop_assert_eq!(dest.len(), dmodel.len());
        }
    }
}
