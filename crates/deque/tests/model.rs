//! Property-based model tests: the deque, driven single-threaded through an
//! arbitrary sequence of operations, must behave exactly like a reference
//! `VecDeque` (push-back/pop-back for the owner, pop-front for the thief).

use std::collections::VecDeque;

use hiper_deque::{new_deque, Steal};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        2 => Just(Op::Steal),
    ]
}

proptest! {
    #[test]
    fn matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let (w, s) = new_deque::<u64>();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        // Single-threaded: Retry is impossible.
                        Steal::Retry => panic!("retry without contention"),
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }

    #[test]
    fn injector_matches_fifo_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let q = hiper_deque::Injector::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                // Injector has a single consumption end; treat Pop and Steal
                // the same.
                Op::Pop | Op::Steal => {
                    prop_assert_eq!(q.steal().success(), model.pop_front());
                }
            }
        }
    }
}
