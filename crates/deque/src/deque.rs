//! A dynamic circular work-stealing deque (Chase & Lev, SPAA 2005) with the
//! C11 memory orderings of Lê, Pochon, Zappa Nardelli & Maranget (PPoPP 2013).
//!
//! The owner ([`Worker`]) pushes and pops at the *bottom* of the deque; any
//! number of thieves ([`Stealer`]) steal from the *top*. The buffer grows
//! geometrically when full. Retired buffers are kept alive until the deque
//! itself is dropped: a thief that raced with a growth may still read from an
//! old buffer, and because growth is geometric the total retired footprint is
//! bounded by ~2x the live buffer, so this is a simple and safe reclamation
//! scheme that needs no epochs or hazard pointers.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::Steal;

/// Initial buffer capacity. Must be a power of two.
const MIN_CAP: usize = 64;

/// Upper bound on how many elements one [`Stealer::steal_batch_and_pop`] call
/// may take. Bounds the time the thief spends transferring (it claims one
/// element per CAS) and leaves work behind for other thieves.
pub const MAX_BATCH: usize = 32;

/// A fixed-capacity ring buffer of `T` slots.
struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    /// Slot storage. Slots are logically owned by the deque indices; the
    /// `UnsafeCell` is required because thieves read slots concurrently with
    /// owner writes to *different* indices.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Buffer<T>> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { cap, slots })
    }

    /// Writes `value` into the slot for logical index `index`.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent write to the same logical index
    /// and that the slot does not hold an unread initialized value that would
    /// be leaked (the deque protocol guarantees both).
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        (*slot.get()).write(value);
    }

    /// Reads the value at logical index `index`, leaving the slot logically
    /// uninitialized.
    ///
    /// # Safety
    /// Caller must guarantee the slot holds an initialized value that no
    /// other thread will also read (enforced by the top/bottom CAS protocol).
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        (*slot.get()).assume_init_read()
    }
}

/// Shared state between the [`Worker`] and its [`Stealer`]s.
struct Inner<T> {
    /// Index one past the last valid element; only the owner mutates it.
    bottom: AtomicIsize,
    /// Index of the first valid element; advanced by successful steals and by
    /// the owner when popping the last element.
    top: AtomicIsize,
    /// Current buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept alive until drop (see module docs).
    /// The boxes are reconstituted from raw pointers handed out to stealers,
    /// so the extra indirection is load-bearing, not accidental.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer<T>>>>,
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drain any elements still in the deque so their destructors run.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        for i in t..b {
            unsafe {
                drop(buf.read(i));
            }
        }
        // Free the live buffer; retired buffers are dropped by the Vec.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}

/// Owner handle: push and pop at the bottom of the deque.
///
/// `Worker` is `Send` but deliberately not `Sync` or `Clone`: exactly one
/// thread may own the bottom end at a time.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opts this type out of `Sync` and makes ownership semantics explicit.
    _not_sync: PhantomData<*mut ()>,
}

unsafe impl<T: Send> Send for Worker<T> {}

/// Thief handle: steal from the top of the deque. Cheap to clone.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// Creates a new empty work-stealing deque, returning the owner and thief
/// handles.
pub fn new<T>() -> (Worker<T>, Stealer<T>) {
    let buffer = Box::into_raw(Buffer::<T>::alloc(MIN_CAP));
    let inner = Arc::new(Inner {
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
        buffer: AtomicPtr::new(buffer),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T> Worker<T> {
    /// Pushes a value onto the bottom (owner end) of the deque.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };

        if b - t >= buf.cap as isize {
            // Full: grow. Only the owner grows, so a plain store suffices for
            // the buffer pointer (paired with Acquire loads in steal()).
            self.grow(b, t);
            buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        }

        unsafe {
            buf.write(b, value);
        }
        // The Release store publishes the slot write to thieves that Acquire
        // bottom.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops a value from the bottom (owner end) of the deque, LIFO order.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        inner.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom store before the top load, the
        // crux of the Chase-Lev protocol: either a racing thief sees the
        // decremented bottom, or we see its incremented top.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty.
            if t == b {
                // Single element left: race the thieves for it.
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // Lost: a thief got it.
                    inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(unsafe { buf.read(b) })
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Approximate number of elements in the deque.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns an additional thief handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Doubles the buffer, copying live slots `[t, b)`. Owner-only.
    #[cold]
    fn grow(&self, b: isize, t: isize) {
        let inner = &*self.inner;
        let old_ptr = inner.buffer.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new = Buffer::<T>::alloc(old.cap * 2);
        for i in t..b {
            // Move the bit pattern; logical ownership of the value transfers
            // to the new buffer. The old slot must not be dropped.
            unsafe {
                let v = std::ptr::read((*old.slots[(i as usize) & (old.cap - 1)].get()).as_ptr());
                new.write(i, v);
            }
        }
        let new_ptr = Box::into_raw(new);
        // Publish the new buffer; thieves Acquire-load it in steal().
        inner.buffer.store(new_ptr, Ordering::Release);
        // Retire (not free) the old buffer: a concurrent thief may still be
        // reading a slot from it. See module docs.
        inner
            .retired
            .lock()
            .expect("retired-buffer lock poisoned")
            .push(unsafe { Box::from_raw(old_ptr) });
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal one value from the top (thief end), FIFO order.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the fence in
        // pop()).
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);

        if t < b {
            // Non-empty: read before CAS (the value may be overwritten by a
            // racing push as soon as top is incremented).
            let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
            let value = unsafe { buf.read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost the race; the read value logically belongs to the
                // winner. Forget our copy so it is not double-dropped.
                std::mem::forget(value);
                return Steal::Retry;
            }
            Steal::Success(value)
        } else {
            Steal::Empty
        }
    }

    /// Steals up to half the deque (capped at [`MAX_BATCH`]): the first
    /// element is returned and the rest are pushed onto `dest`, the thief's
    /// own deque.
    ///
    /// Elements are claimed *one CAS at a time*. A single bulk CAS of `top`
    /// over a whole range would be unsound here: the owner pops interior
    /// slots with plain reads (no CAS) whenever more than one element
    /// remains, so a range claim could hand the same element to both sides.
    /// Claiming element-by-element, re-reading `bottom` between claims,
    /// keeps exactly the pairwise race the single-element protocol already
    /// resolves. A lost CAS ends the batch early with whatever was claimed.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let inner = &*self.inner;
        let mut t = inner.top.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the fence in
        // pop()), exactly as in steal().
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        let len = b - t;
        if len <= 0 {
            return Steal::Empty;
        }
        // Take half of what is visible, rounded up, so a deque of one still
        // yields one.
        let target = (((len + 1) / 2) as usize).min(MAX_BATCH);

        let mut first: Option<T> = None;
        let mut claimed = 0;
        while claimed < target {
            // Re-load the buffer every round: the owner may grow it between
            // our claims.
            let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
            // Read before CAS, same as steal(): the slot may be overwritten
            // by a racing push the moment top moves past it.
            let value = unsafe { buf.read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Another thief (or the owner's last-element CAS) won this
                // slot; the value belongs to the winner.
                std::mem::forget(value);
                break;
            }
            match first {
                None => first = Some(value),
                Some(_) => dest.push(value),
            }
            claimed += 1;
            t += 1;
            if claimed < target {
                // The owner pops by decrementing bottom; re-check that the
                // next slot still exists before reading it.
                fence(Ordering::SeqCst);
                let b = inner.bottom.load(Ordering::Acquire);
                if t >= b {
                    break;
                }
            }
        }
        match first {
            Some(v) => Steal::Success(v),
            None => Steal::Retry,
        }
    }

    /// Approximate number of elements in the deque.
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let (w, _s) = new();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let (w, s) = new();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(s.steal().success(), Some(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn pop_and_steal_interleave() {
        let (w, s) = new();
        for i in 0..10 {
            w.push(i);
        }
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(w.pop(), Some(9));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(8));
    }

    #[test]
    fn empty_deque_reports_empty() {
        let (w, s) = new::<u32>();
        assert!(w.is_empty());
        assert!(s.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, s) = new();
        let n = MIN_CAP * 8;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        // Steal half, pop half; the union must be exactly 0..n.
        let mut seen = HashSet::new();
        for _ in 0..n / 2 {
            seen.insert(s.steal().success().unwrap());
        }
        for _ in 0..n / 2 {
            seen.insert(w.pop().unwrap());
        }
        assert_eq!(seen.len(), n);
        assert!(w.pop().is_none());
    }

    #[test]
    fn drop_runs_destructors_of_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (w, _s) = new();
        for _ in 0..10 {
            w.push(D);
        }
        drop(w.pop()); // one explicit
        drop(w);
        drop(_s);
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn growth_does_not_double_drop() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D(#[allow(dead_code)] usize);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, _s) = new();
            for i in 0..MIN_CAP * 4 {
                w.push(D(i));
            }
            while w.pop().is_some() {}
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), MIN_CAP * 4);
    }

    #[test]
    fn stress_one_owner_many_thieves() {
        const N: usize = 50_000;
        const THIEVES: usize = 3;
        let (w, s) = new();
        let popped = Arc::new(Mutex::new(Vec::new()));
        let stolen: Vec<Arc<Mutex<Vec<usize>>>> = (0..THIEVES)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = (0..THIEVES)
            .map(|i| {
                let s = s.clone();
                let out = Arc::clone(&stolen[i]);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => local.push(v),
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                thread::yield_now();
                            }
                            Steal::Retry => {}
                        }
                    }
                    out.lock().unwrap().extend(local);
                })
            })
            .collect();

        let mut local_popped = Vec::new();
        for i in 0..N {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    local_popped.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            local_popped.push(v);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        popped.lock().unwrap().extend(local_popped);

        let mut all: Vec<usize> = popped.lock().unwrap().clone();
        for s in &stolen {
            all.extend(s.lock().unwrap().iter().copied());
        }
        all.sort_unstable();
        // Every pushed element is consumed exactly once.
        assert_eq!(all.len(), N, "lost or duplicated elements");
        for (i, v) in all.iter().enumerate() {
            assert_eq!(i, *v);
        }
    }

    #[test]
    fn stress_growth_under_contention() {
        const N: usize = 20_000;
        let (w, s) = new();
        let count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thief = {
            let s = s.clone();
            let count = Arc::clone(&count);
            let done = Arc::clone(&done);
            thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(_) => {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) && s.is_empty() {
                            break;
                        }
                        thread::yield_now();
                    }
                    Steal::Retry => {}
                }
            })
        };
        let mut popped = 0usize;
        let mut pushed = 0usize;
        // Push in bursts to repeatedly trigger growth while the thief runs.
        for burst in 0..(N / MIN_CAP) {
            for i in 0..MIN_CAP {
                w.push(burst * MIN_CAP + i);
                pushed += 1;
            }
            if burst % 4 == 3 {
                while w.pop().is_some() {
                    popped += 1;
                }
            }
        }
        while w.pop().is_some() {
            popped += 1;
        }
        done.store(true, Ordering::Release);
        thief.join().unwrap();
        assert_eq!(popped + count.load(Ordering::Relaxed), pushed);
    }
}
