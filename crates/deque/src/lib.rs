//! Work-stealing deque and injector queue used by the HiPER runtime.
//!
//! The HiPER generalized work-stealing runtime (paper §II-B) places `N`
//! deques at every place in the platform model, where `N` is the number of
//! persistent worker threads. Deque `i` at a place holds eligible tasks
//! spawned by worker `i`; the owning worker pushes and pops at one end
//! (LIFO, for locality), and every other worker steals from the opposite end
//! (FIFO, for load balance).
//!
//! This crate provides the two queue flavors that layout needs:
//!
//! * [`deque`] — a from-scratch Chase–Lev dynamic circular work-stealing
//!   deque with the owner/thief handle split ([`deque::Worker`] /
//!   [`deque::Stealer`]).
//! * [`Injector`] — a multi-producer queue for task submissions that
//!   originate *off* the worker pool (e.g. the network delivery engine
//!   satisfying a promise, or an application thread calling `async_at`
//!   before entering the runtime).

pub mod deque;
mod injector;

pub use deque::{new as new_deque, Stealer, Worker, MAX_BATCH};
pub use injector::Injector;

/// Outcome of a steal attempt on a [`Stealer`] or [`Injector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was successfully stolen.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// The steal lost a race with the owner or another thief; retrying may
    /// succeed.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the operation should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}
