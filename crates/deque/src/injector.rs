//! Multi-producer injector queue for off-pool task submission.
//!
//! Every place in the platform model carries one `Injector` in addition to
//! its per-worker deques. Tasks that are made eligible by threads outside the
//! worker pool — the network delivery engine satisfying a promise, a GPU
//! completion poller, or application code running before `Runtime::start` —
//! are pushed here, and workers drain it as part of their steal path.
//!
//! Built on `crossbeam`'s Michael–Scott-style segmented queue, with a length
//! counter maintained for scheduler statistics (the underlying queue's `len`
//! is O(segments)).

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;

use crate::Steal;

/// An unbounded MPMC FIFO queue for injecting tasks into the scheduler.
pub struct Injector<T> {
    queue: SegQueue<T>,
    len: AtomicUsize,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates a new empty injector.
    pub fn new() -> Self {
        Injector {
            queue: SegQueue::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Pushes a task; callable from any thread.
    pub fn push(&self, value: T) {
        self.queue.push(value);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Attempts to take one task, FIFO order.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.pop() {
            Some(v) => {
                self.len.fetch_sub(1, Ordering::Relaxed);
                Steal::Success(v)
            }
            None => Steal::Empty,
        }
    }

    /// Approximate number of queued tasks.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = Injector::new();
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.steal().success(), Some(i));
        }
        assert!(q.steal().is_empty());
    }

    #[test]
    fn len_tracks_push_pop() {
        let q = Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        q.steal();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        const PRODUCERS: usize = 4;
        const PER: usize = 10_000;
        let q = Arc::new(Injector::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Steal::Success(v) = q.steal() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got.len(), PRODUCERS * PER);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(i, *v);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: usize = 5_000;
        let q = Arc::new(Injector::new());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let consumed = Arc::new(AtomicUsize::new(0));

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if done.load(Ordering::Acquire) && q.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), PRODUCERS * PER);
    }
}
