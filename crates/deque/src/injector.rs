//! Multi-producer injector queue for off-pool task submission.
//!
//! Every place in the platform model carries one `Injector` in addition to
//! its per-worker deques. Tasks that are made eligible by threads outside the
//! worker pool — the network delivery engine satisfying a promise, a GPU
//! completion poller, or application code running before `Runtime::start` —
//! are pushed here, and workers drain it as part of their steal path.
//!
//! A mutex-protected `VecDeque` with a separately-maintained atomic length:
//! the length counter lets the scheduler's hot path skip the queue entirely
//! (no lock acquisition) when the injector appears empty, which is the common
//! case. Workers that do find tasks here can drain a batch in one lock
//! acquisition via [`Injector::steal_batch_and_pop`] instead of paying one
//! lock round-trip per task.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{Steal, Worker};

/// An unbounded MPMC FIFO queue for injecting tasks into the scheduler.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates a new empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Pushes a task; callable from any thread.
    pub fn push(&self, value: T) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(value);
        // Published while the lock is held, so `len` never over-reports
        // relative to a consumer that subsequently takes the lock.
        self.len.store(q.len(), Ordering::Release);
    }

    /// Attempts to take one task, FIFO order.
    ///
    /// Returns without touching the lock when the queue appears empty.
    pub fn steal(&self) -> Steal<T> {
        if self.len.load(Ordering::Acquire) == 0 {
            return Steal::Empty;
        }
        let mut q = self.queue.lock().unwrap();
        match q.pop_front() {
            Some(v) => {
                self.len.store(q.len(), Ordering::Release);
                Steal::Success(v)
            }
            None => Steal::Empty,
        }
    }

    /// Takes up to `max` tasks in one lock acquisition: the first is
    /// returned, the rest are pushed onto `dest` (the caller's own deque) in
    /// FIFO order, so the caller pops them LIFO-last — i.e. it will run the
    /// returned task first and the moved batch afterwards, oldest last.
    ///
    /// Returns without touching the lock when the queue appears empty.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>, max: usize) -> Steal<T> {
        if max == 0 || self.len.load(Ordering::Acquire) == 0 {
            return Steal::Empty;
        }
        let batch: Vec<T> = {
            let mut q = self.queue.lock().unwrap();
            let take = max.min(q.len());
            let batch = q.drain(..take).collect();
            self.len.store(q.len(), Ordering::Release);
            batch
        };
        let mut it = batch.into_iter();
        match it.next() {
            Some(first) => {
                for v in it {
                    dest.push(v);
                }
                Steal::Success(first)
            }
            None => Steal::Empty,
        }
    }

    /// Approximate number of queued tasks.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = Injector::new();
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.steal().success(), Some(i));
        }
        assert!(q.steal().is_empty());
    }

    #[test]
    fn len_tracks_push_pop() {
        let q = Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        q.steal();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_moves_rest_to_dest() {
        let q = Injector::new();
        for i in 0..10 {
            q.push(i);
        }
        let (w, _s) = crate::new_deque();
        // Takes 0..4: returns 0, moves 1,2,3 onto the deque.
        assert_eq!(q.steal_batch_and_pop(&w, 4).success(), Some(0));
        assert_eq!(q.len(), 6);
        assert_eq!(w.len(), 3);
        // Owner pops LIFO: newest (3) first.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        // Batch larger than the queue drains it.
        assert_eq!(q.steal_batch_and_pop(&w, 100).success(), Some(4));
        assert_eq!(w.len(), 5);
        assert!(q.is_empty());
        assert!(q.steal_batch_and_pop(&w, 4).is_empty());
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        const PRODUCERS: usize = 4;
        const PER: usize = 10_000;
        let q = Arc::new(Injector::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Steal::Success(v) = q.steal() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got.len(), PRODUCERS * PER);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(i, *v);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: usize = 5_000;
        let q = Arc::new(Injector::new());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let consumed = Arc::new(AtomicUsize::new(0));

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if done.load(Ordering::Acquire) && q.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), PRODUCERS * PER);
    }
}
