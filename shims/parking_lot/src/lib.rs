//! Offline stand-in for the subset of the `parking_lot` crate used by this
//! workspace, implemented over `std::sync` primitives.
//!
//! This container image has no network access to crates.io, so the workspace
//! vendors the few external APIs it needs as small in-tree shims. Semantics
//! match `parking_lot` where the workspace relies on them:
//!
//! * guards are returned directly (no `Result`); lock poisoning is absorbed
//!   by recovering the inner guard, matching `parking_lot`'s poison-free
//!   behavior,
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` rather than consuming
//!   the guard,
//! * constructors are `const fn` where `parking_lot`'s are.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out and
    // put the re-acquired one back without consuming our wrapper.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning (a poisoned lock is recovered, as in `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Outcome of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose wait methods take `&mut MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while asleep.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, c) = &*pair2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
