//! Deterministic PRNG for test-case generation (SplitMix64).

/// A small, fast, deterministic PRNG. Each property test gets its own stream
/// seeded from the test name, so runs are reproducible and tests are
/// independent of declaration order.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream deterministically from `name` (typically the test
    /// function's name).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed golden-ratio constant.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform value in `[lo, hi)` for signed bounds.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = r.range_u64(3, 17);
            assert!((3..17).contains(&v));
            let f = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }
}
