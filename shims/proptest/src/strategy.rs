//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// draws one value directly from the PRNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    /// Recursive strategies: `f` receives a handle generating the previous
    /// depth level, and returns a strategy for one more level of structure.
    /// Leaves are mixed back in at every level, so generation terminates.
    /// The `_desired_size` / `_expected_branch` hints of real proptest are
    /// accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> SBoxed<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(SBoxed<Self::Value>) -> R,
    {
        let leaf = sboxed(self);
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = sboxed(f(cur));
            cur = sboxed(OneOf::new(vec![(1, leaf.clone()), (2, deeper)]));
        }
        cur
    }

    /// Type-erases this strategy behind a cheap clonable handle.
    fn boxed(self) -> SBoxed<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        sboxed(self)
    }
}

/// A clonable, type-erased strategy handle (proptest's `BoxedStrategy`).
pub struct SBoxed<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for SBoxed<T> {
    fn clone(&self) -> Self {
        SBoxed {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for SBoxed<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> fmt::Debug for SBoxed<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SBoxed { .. }")
    }
}

/// Erases a strategy into an [`SBoxed`] handle.
pub fn sboxed<S>(s: S) -> SBoxed<S::Value>
where
    S: Strategy + 'static,
{
    SBoxed { inner: Rc::new(s) }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, SBoxed<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, SBoxed<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.range_u64(0, self.total as u64) as u32;
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value space of `T` — `any::<T>()`.
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(self.start as i64, self.end as i64) as $t
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` patterns of the form `[chars]{m,n}` act as string strategies:
/// a character class with ranges and `\`-escapes, repeated `m..=n` times.
/// Any pattern that does not parse as that shape generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = rng.range_u64(lo as u64, hi as u64 + 1) as usize;
                (0..len)
                    .map(|_| chars[rng.range_u64(0, chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[class]{m}` / `[class]{m,n}` into (alphabet, min_len, max_len).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let mut chars: Vec<char> = Vec::new();
    let mut it = rest.chars().peekable();
    let mut closed = false;
    while let Some(c) = it.next() {
        match c {
            ']' => {
                closed = true;
                break;
            }
            '\\' => {
                let esc = it.next()?;
                chars.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            _ => {
                // `a-z` range (a lone trailing `-` is a literal).
                if it.peek() == Some(&'-') {
                    let mut ahead = it.clone();
                    ahead.next(); // consume '-'
                    match ahead.peek() {
                        Some(&end) if end != ']' => {
                            it = ahead;
                            it.next(); // consume range end
                            for v in c as u32..=end as u32 {
                                chars.push(char::from_u32(v)?);
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                chars.push(c);
            }
        }
    }
    if !closed || chars.is_empty() {
        return None;
    }
    let rep: String = it.collect();
    let body = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn just_and_map() {
        let mut r = rng();
        let s = Just(7u32).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut r), 14);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (-1.0..1.0f64).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_honors_zero_weighted_exclusion() {
        let mut r = rng();
        let s = OneOf::new(vec![(1, sboxed(Just(1u8))), (3, sboxed(Just(2u8)))]);
        let mut saw = [0usize; 3];
        for _ in 0..400 {
            saw[s.generate(&mut r) as usize - 1] += 1;
        }
        assert!(saw[0] > 0 && saw[1] > saw[0]);
    }

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-c_\\-]{1,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '_', '-']);
        assert_eq!((lo, hi), (1, 4));
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            // The payload is generated but never inspected.
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            // Depth bound: `depth` levels of Node plus the leaf itself.
            assert!(depth(&strat.generate(&mut r)) <= 4 + 1);
        }
    }
}
