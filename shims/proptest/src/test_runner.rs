//! Test-run configuration and the error type surfaced by `prop_assert*`.

use std::fmt;

/// Configuration for a `proptest!` block. Mirrors the fields of real
/// proptest's `ProptestConfig` that this workspace sets; everything else is
/// carried by `_non_exhaustive`-style struct-update (`.. Default::default()`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching real proptest.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case asked to be discarded (kept for API parity; unused here).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_struct_update_works() {
        let cfg = ProptestConfig {
            cases: 8,
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.cases, 8);
        assert!(!cfg.fork);
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
    }
}
