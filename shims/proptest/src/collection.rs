//! Collection strategies (`collection::vec`, `collection::btree_map`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy for `Vec`s of `elem` with a length drawn from `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_u64(self.len.start as u64, self.len.end as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with `size` entries drawn from `key` / `value`.
/// Duplicate generated keys collapse, so the final size may be smaller.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, size }
}

/// The result of [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = rng.range_u64(self.size.start as u64, self.size.end as u64) as usize;
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let mut r = TestRng::deterministic("vec-len");
        let s = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn btree_map_bounded() {
        let mut r = TestRng::deterministic("map-size");
        let s = btree_map(0u32..100, "[a-z]{1,4}", 0..8);
        for _ in 0..50 {
            let m = s.generate(&mut r);
            assert!(m.len() < 8);
        }
    }
}
