//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace (the build environment has no network access to crates.io).
//!
//! Faithful to proptest's surface for the patterns the workspace uses —
//! `proptest! { fn t(x in strategy) { .. } }`, `prop_oneof!`, `prop_assert*`,
//! `any::<T>()`, ranges, tuples, `prop_map`, `prop_recursive`,
//! `collection::{vec, btree_map}`, simple `[class]{m,n}` string patterns —
//! but intentionally simpler underneath: inputs are generated from a
//! deterministic per-test PRNG and failing cases are reported with their
//! inputs, without shrinking.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::rng::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __config.cases, __e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Weighted or unweighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::sboxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::sboxed($strat))),+
        ])
    };
}

/// Fails the current proptest case (with formatted message) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current proptest case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, "{:?} != {:?}", __a, __b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "{:?} == {:?}", __a, __b);
    }};
}
