//! Offline stand-in for the subset of the `criterion` crate used by this
//! workspace (no network access to crates.io in the build environment).
//!
//! Implements the same measurement shape — warm-up phase, then `sample_size`
//! samples, each iterating the closure enough times to fill
//! `measurement_time / sample_size` — and reports min/median/max ns per
//! iteration to stdout. No plots, no statistics beyond the median, no
//! baseline storage; pipe the output somewhere if you want history.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness: holds timing configuration and runs benchmarks
/// registered through [`Criterion::bench_function`].
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets how long to run the closure untimed before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the closure repeatedly and measure its per-iteration
        // cost so we can size the timed samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = if warm_iters > 0 {
            warm_start.elapsed().as_nanos() as f64 / warm_iters as f64
        } else {
            1.0
        };

        // Size each sample so the whole run fits in measurement_time.
        let sample_budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (sample_budget / per_iter.max(1.0)).max(1.0) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = iters_per_sample;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let max = samples_ns.last().copied().unwrap_or(0.0);
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        self
    }
}

/// Formats nanoseconds with criterion-style unit scaling.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
