//! Offline stand-in for the subset of the `bytes` crate used by this
//! workspace (no network access to crates.io in the build environment).
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer: an `Arc<[u8]>`
//! plus a sub-range, so `clone()` and `slice()` are O(1) and never copy.
//! [`BytesMut`] is a growable builder that freezes into a `Bytes`.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates a `Bytes` from a static slice. (The shim copies; the range of
    /// payload sizes used through this path is tiny.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Creates a `Bytes` holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Returns a zero-copy sub-slice of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice {:?} out of bounds of Bytes of length {}",
            range,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let len = data.len();
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// Write-side helpers shared by [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice (also available through [`BufMut`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn builder_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u64_le(0x0102030405060708);
        m.put_slice(&[0xaa, 0xbb]);
        let b = m.freeze();
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], 0x08);
        assert_eq!(b[7], 0x01);
        assert_eq!(&b[8..], &[0xaa, 0xbb]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(&s[..], b"abc");
        assert_eq!(s.to_vec(), b"abc".to_vec());
    }
}
