//! The paper's §II-D running example: a 3-D stencil distributed in the
//! z-direction across MPI ranks, composing **MPI + CUDA + host tasks** with
//! HiPER futures.
//!
//! Each rank owns a slab of a 3-D grid. Per time step (all inside one
//! `finish`, exactly as the paper's listing):
//!
//! 1. the *ghost planes* are processed on the host with `forasync_future`,
//! 2. `MPI_Isend_await` transmits them once that future is satisfied, while
//!    `MPI_Irecv` futures await the neighbors' planes,
//! 3. the slab *interior* is processed by a CUDA kernel whose launch is
//!    **not** blocked on any of the above,
//! 4. the received planes are copied to the device predicated on the
//!    receive futures (`async_copy_await`).
//!
//! Every dependency is expressed between components (MPI ↔ CUDA ↔ host)
//! through futures; no blocking call stalls a CPU thread.
//!
//! Run with: `cargo run --release --example stencil3d`

use std::sync::Arc;

use hiper::gpu::GpuModule;
use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;

const NX: usize = 16;
const NY: usize = 16;
const NZ: usize = 24; // interior planes per rank
const STEPS: usize = 5;
const PLANE: usize = NX * NY;

const TAG_UP: u64 = 1;
const TAG_DOWN: u64 = 2;

fn main() {
    let ranks = 3;
    let results = SpmdBuilder::new(ranks)
        .net(NetConfig::default())
        .platform(|_| hiper::platform::autogen::smp_with_gpus(2, 1))
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                let gpu = GpuModule::new();
                (
                    vec![
                        Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                        Arc::clone(&gpu) as Arc<dyn SchedulerModule>,
                    ],
                    (mpi, gpu),
                )
            },
            |env, (mpi, gpu)| {
                let me = env.rank;
                let up = if me + 1 < env.nranks {
                    Some(me + 1)
                } else {
                    None
                };
                let down = if me > 0 { Some(me - 1) } else { None };

                // Device slab: NZ interior planes + 2 halo planes.
                let stream = gpu.create_stream(0);
                let slab = gpu.alloc(0, (NZ + 2) * PLANE * 8);
                // Initialize: a hot plane in the middle of the global bar.
                slab.with_f64_mut(|v| {
                    for (i, x) in v.iter_mut().enumerate() {
                        let z_local = i / PLANE;
                        *x = if me == env.nranks / 2 && z_local == NZ / 2 {
                            100.0
                        } else {
                            0.0
                        };
                    }
                });

                let mut norms = Vec::new();
                for _t in 0..STEPS {
                    // Fetch the boundary interior planes the host needs for
                    // ghost processing (D2H futures).
                    let top_fut = gpu.memcpy_d2h_future(&stream, &slab, NZ * PLANE * 8, PLANE * 8);
                    let bot_fut = gpu.memcpy_d2h_future(&stream, &slab, PLANE * 8, PLANE * 8);

                    finish(|| {
                        // (1) Ghost processing on the host, asynchronously:
                        // here a simple smoothing of the outgoing planes.
                        let top2 = top_fut.clone();
                        let ghost_fut = async_future(move || {
                            let mut plane: Vec<f64> = hiper::netsim::pod::from_bytes(&top2.get());
                            smooth_plane(&mut plane);
                            plane
                        });
                        let bot2 = bot_fut.clone();
                        let ghost_fut_b = async_future(move || {
                            let mut plane: Vec<f64> = hiper::netsim::pod::from_bytes(&bot2.get());
                            smooth_plane(&mut plane);
                            plane
                        });

                        // (2) Transmit ghost planes once ready; post recvs.
                        let unit = hiper::runtime::when_all(&[to_unit(&ghost_fut)]);
                        let unit_b = hiper::runtime::when_all(&[to_unit(&ghost_fut_b)]);
                        if let Some(up) = up {
                            let g = ghost_fut.clone();
                            mpi.isend_await(up, TAG_UP, move || g.get(), &unit);
                        }
                        if let Some(down) = down {
                            let g = ghost_fut_b.clone();
                            mpi.isend_await(down, TAG_DOWN, move || g.get(), &unit_b);
                        }
                        let recv_up = up.map(|u| mpi.irecv::<f64>(Some(u), Some(TAG_DOWN)));
                        let recv_down = down.map(|d| mpi.irecv::<f64>(Some(d), Some(TAG_UP)));

                        // (3) Interior on the CUDA device, independent of
                        // the communication above.
                        let s2 = Arc::clone(&slab);
                        let interior = gpu.launch_future(&stream, move || {
                            s2.with_f64_mut(jacobi_interior);
                        });

                        // (4) Received planes to the device, predicated on
                        // (recv, interior-kernel) futures.
                        for (recv, halo_plane) in [
                            (recv_up, NZ + 1), // from up goes into top halo
                            (recv_down, 0),    // from down goes into bottom halo
                        ] {
                            if let Some(recv) = recv {
                                let deps = [to_unit(&recv), interior.clone()];
                                let all = hiper::runtime::when_all(&deps);
                                let gpu = Arc::clone(&gpu);
                                let slab = Arc::clone(&slab);
                                let stream = stream.clone();
                                let recv2 = recv.clone();
                                async_await(&all, move || {
                                    let (plane, _, _) = recv2.get();
                                    gpu.memcpy_h2d_future(
                                        &stream,
                                        &slab,
                                        halo_plane * PLANE * 8,
                                        bytes_of(&plane).to_vec(),
                                    )
                                    .wait();
                                });
                            }
                        }
                    })
                    .expect("no task panicked");

                    gpu.device_synchronize(0);
                    let norm = slab.with_f64(|v| v.iter().map(|x| x * x).sum::<f64>());
                    norms.push(norm);
                }

                // Global norm via MPI allreduce: the diffused bar must keep
                // finite, decreasing energy.
                let global: Vec<f64> =
                    mpi.allreduce(&[*norms.last().unwrap()], hiper::mpi::ReduceOp::Sum);
                if me == 0 {
                    println!("final global squared norm: {:.4}", global[0]);
                }
                norms
            },
        );

    println!("per-rank norm trajectories:");
    for (rank, norms) in results.iter().enumerate() {
        let pretty: Vec<String> = norms.iter().map(|n| format!("{:.2}", n)).collect();
        println!("  rank {}: {}", rank, pretty.join(" -> "));
        assert!(norms.iter().all(|n| n.is_finite()), "diverged");
    }
    // Energy decreases monotonically on the hot rank (pure diffusion).
    let hot = &results[1];
    assert!(
        hot.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "norm must decay"
    );
    println!("stencil3d OK");
}

fn to_unit<T: Send + 'static>(f: &hiper::runtime::Future<T>) -> hiper::runtime::Future<()> {
    let p = Promise::new();
    let out = p.future();
    let mut slot = Some(p);
    f.on_ready(move || slot.take().expect("fired twice").put(()));
    out
}

fn bytes_of(plane: &[f64]) -> Vec<u8> {
    plane.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn smooth_plane(plane: &mut [f64]) {
    for v in plane.iter_mut() {
        *v *= 0.99;
    }
}

/// One Jacobi relaxation sweep over the interior planes (halos read-only).
fn jacobi_interior(v: &mut [f64]) {
    let old = v.to_vec();
    let idx = |x: usize, y: usize, z: usize| z * PLANE + y * NX + x;
    for z in 1..=NZ {
        for y in 1..NY - 1 {
            for x in 1..NX - 1 {
                v[idx(x, y, z)] = old[idx(x, y, z)]
                    + 0.1
                        * (old[idx(x - 1, y, z)]
                            + old[idx(x + 1, y, z)]
                            + old[idx(x, y - 1, z)]
                            + old[idx(x, y + 1, z)]
                            + old[idx(x, y, z - 1)]
                            + old[idx(x, y, z + 1)]
                            - 6.0 * old[idx(x, y, z)]);
            }
        }
    }
}
