//! Quickstart: the HiPER task model in one file.
//!
//! Run with: `cargo run --example quickstart`

use hiper::prelude::*;

fn main() {
    // A flat SMP platform model with one worker per (discovered) core.
    let config = hiper::platform::autogen::discover();
    println!(
        "platform '{}': {} places, {} workers",
        config.name,
        config.graph.len(),
        config.workers
    );
    let rt = Runtime::new(config);

    let rt2 = rt.clone();
    rt.block_on(move || {
        // --- async / finish: bulk task synchronization (paper §II-B4) ---
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = counter.clone();
        finish(|| {
            for _ in 0..1000 {
                let c = c.clone();
                async_(move || {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no task panicked");
        println!(
            "finish waited for {} tasks",
            counter.load(std::sync::atomic::Ordering::SeqCst)
        );

        // --- promises & futures: point-to-point synchronization ---
        let p = Promise::new();
        let f = p.future();
        async_(move || p.put("payload".to_string()));
        async_await(&f, || println!("a task ran strictly after the put"));
        println!("future carried: {}", f.get());

        // --- future chains ---
        let a = async_future(|| 2);
        let b = async_future_await(&a, || 3);
        println!("chained futures: {} then {}", a.get(), b.get());

        // --- forasync: data parallelism over the work-stealing pool ---
        let n = 1 << 16;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let data = std::sync::Arc::new(std::sync::Mutex::new(data));
        let d = data.clone();
        forasync_1d(n, 1024, move |i| {
            d.lock().unwrap()[i] *= 2.0;
        });
        let sum: f64 = data.lock().unwrap().iter().sum();
        println!("forasync doubled {} elements, sum = {}", n, sum);

        // --- scheduler statistics (paper §V hooks) ---
        println!("scheduler: {}", rt2.sched_stats());
    });

    rt.shutdown();
}
