//! The paper's §V future-work module in action: overlapping checkpoint I/O
//! with useful computation.
//!
//! An iterative "solver" snapshots its state every few iterations. With
//! blocking writes the solver stalls for the full disk time; with the
//! checkpoint module the write is a task at the platform model's disk place
//! and the solver keeps iterating.
//!
//! Run with: `cargo run --release --example checkpoint_overlap`

use std::sync::Arc;
use std::time::{Duration, Instant};

use hiper::checkpoint::{CheckpointModule, DiskModel};
use hiper::prelude::*;

const STATE_BYTES: usize = 200_000;
const ITERS: usize = 6;
const CKPT_EVERY: usize = 2;

fn compute_step(state: &mut [u8]) {
    // ~10ms of "solver" work.
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(10) {
        for b in state.iter_mut().take(4096) {
            *b = b.wrapping_mul(31).wrapping_add(7);
        }
    }
}

fn main() {
    let dir = std::env::temp_dir().join("hiper_ckpt_example");
    let _ = std::fs::remove_dir_all(&dir);
    let slow_disk = DiskModel {
        write_bandwidth: 10.0e6, // 200KB -> 20ms
        overhead: Duration::from_micros(100),
    };
    let ckpt = CheckpointModule::with_model(&dir, slow_disk);
    let rt = RuntimeBuilder::new(hiper::platform::autogen::figure2(1))
        .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
        .build()
        .expect("runtime");

    // --- blocking style: wait for each snapshot before continuing ---
    let c = Arc::clone(&ckpt);
    let blocking = rt.block_on(move || {
        let mut state = vec![1u8; STATE_BYTES];
        let start = Instant::now();
        for it in 0..ITERS {
            compute_step(&mut state);
            if it % CKPT_EVERY == 0 {
                c.checkpoint("blocking", it as u64, state.clone()).wait();
            }
        }
        start.elapsed()
    });

    // --- overlapped style: futures; only drain at the end ---
    let c = Arc::clone(&ckpt);
    let overlapped = rt.block_on(move || {
        let mut state = vec![1u8; STATE_BYTES];
        let start = Instant::now();
        let mut pending = Vec::new();
        for it in 0..ITERS {
            compute_step(&mut state);
            if it % CKPT_EVERY == 0 {
                pending.push(c.checkpoint("overlap", it as u64, state.clone()));
            }
        }
        for f in &pending {
            f.wait();
        }
        start.elapsed()
    });

    println!("blocking  checkpoints: {:?}", blocking);
    println!("overlapped checkpoints: {:?}", overlapped);
    println!(
        "overlap saves {:.1}% of wall-clock",
        100.0 * (1.0 - overlapped.as_secs_f64() / blocking.as_secs_f64())
    );
    let c = Arc::clone(&ckpt);
    rt.block_on(move || {
        let latest = c.latest_version("overlap").expect("snapshots exist");
        let restored = c.restore("overlap", latest).get().expect("restore");
        assert_eq!(restored.len(), STATE_BYTES);
        println!(
            "restored snapshot v{} ({} bytes, checksum OK)",
            latest,
            restored.len()
        );
    });
    assert!(overlapped < blocking, "overlap must beat blocking");
    rt.shutdown();
}
