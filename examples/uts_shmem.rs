//! Mini distributed Unbalanced Tree Search with AsyncSHMEM (the full
//! benchmark with all three baselines lives in `hiper-bench`, Figure 7).
//!
//! Each rank expands nodes of a synthetic unbalanced tree; idle ranks steal
//! work through one-sided SHMEM atomics, and termination is detected with a
//! global count reduction — with `shmem_async_when` replacing any manual
//! polling loop.
//!
//! Run with: `cargo run --release --example uts_shmem`

use std::sync::Arc;

use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;
use hiper::shmem::{Cmp, ShmemModule, ShmemWorld};

fn main() {
    let ranks = 4;
    let world = ShmemWorld::new(ranks, 1 << 22);
    let results = SpmdBuilder::new(ranks)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            move |_rank, transport| {
                let shmem = ShmemModule::new(world.clone(), transport);
                (vec![Arc::clone(&shmem) as Arc<dyn SchedulerModule>], shmem)
            },
            |env, shmem| {
                let raw = shmem.raw();
                // Symmetric counter: total tree nodes seen by each rank.
                let counted = raw.malloc64(1);
                // Symmetric flag for the async_when demo.
                let done_flag = raw.malloc64(1);
                raw.barrier_all();

                // Rank 0 seeds the root; the tree is a deterministic
                // splittable structure: node (depth, seed) has
                // `seed % 4` children while depth < 8.
                let mut frontier: Vec<(u32, u64)> = if env.rank == 0 {
                    vec![(0, 0x9e3779b97f4a7c15)]
                } else {
                    vec![]
                };
                let mut local_count = 0u64;

                // Expand with intra-rank parallelism (forasync-style) and a
                // simple inter-rank handoff: surplus nodes are pushed to the
                // next rank's heap mailbox via one-sided puts.
                let mailbox = raw.malloc64(64); // up to 32 (depth,seed) pairs
                let mail_count = raw.malloc64(1);
                raw.barrier_all();

                for _round in 0..64 {
                    // Drain our mailbox (nodes stolen to us).
                    let n = raw.heap().load_u64(mail_count.offset) as usize;
                    if n > 0 {
                        for i in 0..n.min(32) {
                            let packed = raw.heap().load_u64(mailbox.at64(i));
                            frontier.push(((packed >> 56) as u32, packed & ((1 << 56) - 1)));
                        }
                        raw.heap().store_u64(mail_count.offset, 0);
                    }
                    // Expand a batch locally.
                    let batch: Vec<_> = frontier.drain(..frontier.len().min(256)).collect();
                    for (depth, seed) in batch {
                        local_count += 1;
                        // Geometric-flavored unbalanced tree: bushy near the
                        // root, thinning with depth (UTS-style shape).
                        let kids = if depth < 6 {
                            1 + (seed % 3) as u32
                        } else if depth < 12 {
                            (seed % 2) as u32
                        } else {
                            0
                        };
                        for k in 0..kids {
                            let child =
                                splitmix(seed ^ (k as u64 + 1).wrapping_mul(0xff51afd7ed558ccd));
                            frontier.push((depth + 1, child));
                        }
                    }
                    // Offload surplus to the neighbor (distributed load
                    // balancing through the symmetric heap).
                    if frontier.len() > 64 {
                        let victim = (env.rank + 1) % env.nranks;
                        let spill: Vec<(u32, u64)> = frontier.drain(..16).collect();
                        let slot = raw.fadd(victim, mail_count.offset, spill.len() as u64);
                        if (slot as usize) + spill.len() <= 32 {
                            for (i, (d, s)) in spill.iter().enumerate() {
                                let packed = ((*d as u64) << 56) | (s & ((1 << 56) - 1));
                                raw.put64(victim, mailbox.at64(slot as usize + i), &[packed]);
                            }
                        } else {
                            // Mailbox full: take the work back.
                            frontier.extend(spill);
                        }
                    }
                    if frontier.is_empty() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }

                raw.store_local_i64(counted.offset, local_count as i64);
                raw.barrier_all();
                let totals = shmem.sum_to_all_u64(vec![local_count]);

                // Demonstrate shmem_async_when: rank 0 signals completion,
                // everyone else has a task predicated on the flag.
                if env.rank == 0 {
                    for r in 1..env.nranks {
                        raw.put64(r, done_flag.offset, &[1]);
                    }
                    raw.quiet();
                } else {
                    finish(|| {
                        let rank = env.rank;
                        shmem.async_when(done_flag.offset, Cmp::Eq, 1, move || {
                            println!("rank {} notified of completion via shmem_async_when", rank);
                        });
                    })
                    .expect("no task panicked");
                }
                (local_count, totals[0])
            },
        );

    let total = results[0].1;
    println!(
        "\nper-rank node counts: {:?}",
        results.iter().map(|r| r.0).collect::<Vec<_>>()
    );
    println!("global tree nodes visited: {}", total);
    assert!(
        results.iter().all(|r| r.1 == total),
        "ranks disagree on total"
    );
    assert!(total > 100, "tree unexpectedly small");
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}
