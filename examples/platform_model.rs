//! The paper's Figure 2 platform model: build it, serialize it to JSON,
//! reload it, and walk pop/steal paths over it.
//!
//! Run with: `cargo run --example platform_model`

use hiper::platform::{autogen, PathPolicy, PlatformConfig};

fn main() {
    // Build the Figure 2 model: two NUMA domains, two GPUs, interconnect,
    // NVM and local disk (paper §II-A).
    let config = autogen::figure2(12); // Edison-like 2 x 12 cores
    println!("=== platform '{}' ===", config.name);
    for place in config.graph.places() {
        let neighbors: Vec<String> = config
            .graph
            .neighbors(place.id)
            .iter()
            .map(|n| config.graph.place(*n).name.clone())
            .collect();
        println!(
            "  {:<14} kind={:<12} edges -> {}",
            place.name,
            place.kind.to_string(),
            neighbors.join(", ")
        );
    }

    // JSON roundtrip: the on-disk format HiPER loads at initialization.
    let json = config.to_json();
    println!(
        "\n=== JSON ({} bytes) ===\n{}",
        json.len(),
        &json[..400.min(json.len())]
    );
    let reloaded = PlatformConfig::from_json(&json).expect("roundtrip must parse");
    assert_eq!(reloaded.graph.len(), config.graph.len());
    assert_eq!(reloaded.graph.edges(), config.graph.edges());
    println!(
        "... roundtrip OK ({} places, {} edges)",
        reloaded.graph.len(),
        reloaded.graph.edges().len()
    );

    // Pop/steal paths: the flexible encoding of load-balancing policies
    // (paper §II-B3). Show how the hierarchy-aware policy orders places by
    // platform-graph distance for a worker homed at each NUMA domain.
    println!("\n=== hierarchical steal paths ===");
    for worker in [0, config.workers - 1] {
        let home = config.worker_homes[worker];
        let path = PathPolicy::Hierarchical.generate(&config.graph, worker, home);
        let names: Vec<&str> = path
            .iter()
            .map(|p| config.graph.place(*p).name.as_str())
            .collect();
        println!(
            "  worker {:>2} (home {}): {}",
            worker,
            config.graph.place(home).name,
            names.join(" -> ")
        );
    }

    // Save to configs/ so the file ships with the repo.
    let out = std::path::Path::new("configs/fig2_platform.json");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    autogen::write_config(&config, out).expect("write config");
    println!("\nwrote {}", out.display());
}
