//! The §V tooling story: "Hooks have been added to the HiPER runtime which
//! enable programmers to gather statistics on time spent in calls to
//! different modules."
//!
//! Runs a small composed workload (MPI + host tasks) and prints the
//! per-module call counts and cumulative time, plus the scheduler counters
//! (pops, steals, injector hits, parks, help-first executions).
//!
//! Run with: `cargo run --release --example stats_hooks`

use std::sync::Arc;

use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;

fn main() {
    let reports = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                // A composed workload: local task parallelism interleaved
                // with MPI traffic.
                for round in 0..5 {
                    finish(|| {
                        for _ in 0..200 {
                            async_(|| {
                                std::hint::black_box((0..500).sum::<u64>());
                            });
                        }
                    })
                    .expect("no task panicked");
                    if env.rank == 0 {
                        mpi.send(1, round, &[round]);
                        let _ = mpi.recv::<u64>(Some(1), Some(round));
                    } else {
                        let _ = mpi.recv::<u64>(Some(0), Some(round));
                        mpi.send(0, round, &[round]);
                    }
                    mpi.barrier();
                }

                // Gather this rank's statistics report.
                let mut lines = Vec::new();
                lines.push(format!(
                    "rank {} scheduler: {}",
                    env.rank,
                    env.runtime.sched_stats()
                ));
                for (module, calls, time) in env.runtime.module_stats().snapshot() {
                    lines.push(format!(
                        "rank {} module '{}': {} calls, {:?} total",
                        env.rank, module, calls, time
                    ));
                }
                lines
            },
        );

    println!("=== per-module statistics (paper §V hooks) ===");
    for lines in &reports {
        for line in lines {
            println!("{}", line);
        }
    }
    // The MPI module must have recorded calls on both ranks.
    assert!(reports
        .iter()
        .all(|lines| lines.iter().any(|l| l.contains("'mpi'"))));
}
