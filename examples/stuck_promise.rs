//! Deliberately deadlocked run: the stall-watchdog demo.
//!
//! Rank 0 blocks on a [`Promise`] that only a network message can fulfill,
//! and the cluster runs under a 100%-drop [`FaultPlan`], so that message
//! never arrives. Rank 1 sends it through a [`ReliableTransport`] with a
//! tight retransmit cap — every attempt is dropped, the peer is declared
//! dead, and rank 0 hangs forever in `Future::get`.
//!
//! This example exists to exercise the watchdog end to end. Run it with the
//! watchdog armed and it terminates itself with a flight record naming the
//! stuck span instead of hanging:
//!
//! ```sh
//! HIPER_WATCHDOG=abort:2s \
//! HIPER_WATCHDOG_FILE=flightrec.json \
//! cargo run --release --example stuck_promise -- --trace stuck.json
//! # exits 86; flightrec.json has "stuck_span" / "stuck_rank"
//! ```
//!
//! Without `HIPER_WATCHDOG` set this process hangs by design — use a
//! `timeout(1)` wrapper if you run it bare.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hiper::netsim::pod::to_bytes;
use hiper::netsim::{Channel, FaultPlan, NetConfig, ReliableTransport, RetryConfig, SpmdBuilder};
use hiper::prelude::*;

/// Spare channel, away from the module channels (APP/MPI/SHMEM/UPCXX).
const DEMO: Channel = Channel(42);
const TAG: u64 = 7;

fn main() {
    let _trace = hiper::trace::session_from_env_args();

    SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        // Every frame — data and retransmissions alike — is dropped.
        .faults(FaultPlan::seeded(7).drop_p(1.0))
        .run(
            |_rank, transport| {
                // Tight retry budget so rank 1 gives up quickly instead of
                // retransmitting into the void for the whole run.
                let rel = ReliableTransport::new(
                    transport,
                    "stuck-demo",
                    RetryConfig {
                        timeout: Duration::from_millis(1),
                        backoff: 2.0,
                        max_timeout: Duration::from_millis(4),
                        max_attempts: 4,
                    },
                );
                (Vec::new(), rel)
            },
            |env, rel| {
                if env.rank == 0 {
                    let p = Promise::new();
                    let f = p.future();
                    let slot = Arc::new(Mutex::new(Some(p)));
                    let fulfiller = Arc::clone(&slot);
                    rel.register_handler(
                        DEMO,
                        Box::new(move |msg| {
                            if let Some(p) = fulfiller.lock().unwrap().take() {
                                p.put(msg.payload.len() as u64);
                            }
                        }),
                    );
                    eprintln!(
                        "[rank 0] blocking on a promise only a (100%-dropped) message fulfills"
                    );
                    let n = f.get();
                    // Unreachable: the watchdog aborts (or the user kills us)
                    // long before any payload lands.
                    eprintln!("[rank 0] impossibly received {} bytes", n);
                } else {
                    rel.send(0, DEMO, TAG, to_bytes(&[1u64, 2, 3]));
                    eprintln!("[rank 1] sent the wake-up message into the void");
                }
            },
        );
}
