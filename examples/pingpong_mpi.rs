//! MPI module basics: taskified blocking calls, future-returning
//! nonblocking calls, and a latency/bandwidth probe of the simulated
//! interconnect.
//!
//! Run with: `cargo run --release --example pingpong_mpi`
//!
//! Pass `--trace out.json` (or set `HIPER_TRACE=out.json`) to record a
//! Chrome-trace timeline of the run — open it at <https://ui.perfetto.dev>.

use std::sync::Arc;
use std::time::Instant;

use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;

fn main() {
    let _trace = hiper::trace::session_from_env_args();
    let results = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                const ROUNDS: usize = 50;
                mpi.barrier();
                // --- latency: empty-message ping-pong ---
                let start = Instant::now();
                for _ in 0..ROUNDS {
                    if env.rank == 0 {
                        mpi.send::<u8>(1, 1, &[]);
                        let _ = mpi.recv::<u8>(Some(1), Some(2));
                    } else {
                        let _ = mpi.recv::<u8>(Some(0), Some(1));
                        mpi.send::<u8>(0, 2, &[]);
                    }
                }
                let rtt = start.elapsed() / ROUNDS as u32;

                // --- bandwidth: 1 MB one-way transfers ---
                let payload = vec![0u8; 1 << 20];
                mpi.barrier();
                let start = Instant::now();
                for _ in 0..8 {
                    if env.rank == 0 {
                        mpi.send(1, 3, &payload);
                        let _ = mpi.recv::<u8>(Some(1), Some(4)); // ack
                    } else {
                        let _ = mpi.recv::<u8>(Some(0), Some(3));
                        mpi.send::<u8>(0, 4, &[]);
                    }
                }
                let bw = 8.0 * (1 << 20) as f64 / start.elapsed().as_secs_f64();

                // --- overlap: irecv future + useful work during flight ---
                mpi.barrier();
                let overlap_work = if env.rank == 1 {
                    let fut = mpi.irecv_bytes(Some(0), Some(5));
                    let mut count = 0u64;
                    while !fut.is_ready() {
                        // "useful work" while the message is in flight
                        count += 1;
                        std::hint::black_box(count);
                    }
                    count
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    mpi.send(1, 5, &[1u8]);
                    0
                };
                mpi.barrier();
                (rtt, bw, overlap_work)
            },
        );

    let (rtt, bw, _) = results[0];
    println!("round-trip latency : {:?}", rtt);
    println!("one-way bandwidth  : {:.2} MB/s", bw / 1e6);
    println!(
        "iterations of useful work overlapped with one in-flight recv: {}",
        results[1].2
    );
    assert!(results[1].2 > 0, "no overlap achieved");
}
