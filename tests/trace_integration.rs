//! End-to-end tracing: run a forasync workload plus an MPI ping-pong under
//! an enabled trace session, write the Chrome trace-event JSON, parse it
//! back, and verify the invariants a timeline viewer needs — B/E pairing
//! and monotone timestamps per (pid, tid) track, worker tracks under the
//! runtime process (rankless runtimes under pid 1, per-rank runtimes under
//! pid 10 + rank), and per-rank network tracks under the netsim process.

use std::collections::BTreeMap;
use std::sync::Arc;

use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::platform::json::Json;
use hiper::prelude::*;

#[test]
fn traced_run_produces_valid_chrome_json() {
    let path = std::env::temp_dir().join(format!("hiper_trace_it_{}.json", std::process::id()));
    let mut session = hiper::trace::TraceSession::start(&path);
    session.report = false;

    // Local task + forasync workload on a 2-worker runtime. The explicit
    // spawns pin the task-span count: forasync splits adaptively (it only
    // publishes tasks when a worker is idle), so its span count varies.
    let rt = Runtime::new(hiper::platform::autogen::smp(2));
    rt.block_on(|| {
        finish(|| {
            for _ in 0..64 {
                async_(|| {
                    std::hint::black_box(0);
                });
            }
            forasync_1d(10_000, 256, |i| {
                std::hint::black_box(i);
            });
        })
        .expect("no task panicked");
    });
    rt.shutdown();

    // MPI ping-pong across a 2-rank simulated cluster.
    SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                for round in 0..10u64 {
                    if env.rank == 0 {
                        mpi.send(1, 1, &[round]);
                        let _ = mpi.recv::<u64>(Some(1), Some(2));
                    } else {
                        let _ = mpi.recv::<u64>(Some(0), Some(1));
                        mpi.send(0, 2, &[round]);
                    }
                }
                mpi.barrier();
            },
        );

    let data = session.finish().expect("trace file written");
    assert!(!data.is_empty(), "traced run recorded no events");

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    let doc = Json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 100, "suspiciously small trace");

    // Per-(pid, tid) track state: last ts, open B/E stack, lossiness.
    struct Track {
        last_ts: f64,
        stack: Vec<String>,
        lossy: bool,
    }
    let mut tracks: BTreeMap<(u64, u64), Track> = BTreeMap::new();
    let mut runtime_task_spans = 0u64;
    let mut net_sends = 0u64;
    let mut net_delivers = 0u64;
    let mut module_spans = 0u64;
    let mut sched_instants = 0u64;

    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(Json::as_str).expect("event name");
        let ph = ev.get("ph").and_then(Json::as_str).expect("event ph");
        let pid = ev.get("pid").and_then(Json::as_f64).expect("event pid") as u64;
        if ph == "M" {
            continue;
        }
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("event {} ({}) has no ts", i, name));
        let track = tracks.entry((pid, tid)).or_insert(Track {
            last_ts: f64::NEG_INFINITY,
            stack: Vec::new(),
            lossy: false,
        });
        assert!(
            ts >= track.last_ts,
            "event {} ({}) goes back in time on pid {} tid {}: {} < {}",
            i,
            name,
            pid,
            tid,
            ts,
            track.last_ts
        );
        track.last_ts = ts;
        if name == "dropped events" {
            track.lossy = true;
        }
        match ph {
            "B" => track.stack.push(name.to_string()),
            "E" => {
                let open = track.stack.pop();
                match open {
                    Some(open) => {
                        assert_eq!(
                            open, name,
                            "event {}: E closes a different B on pid {} tid {}",
                            i, pid, tid
                        );
                        if pid == 1 && name == "task" {
                            runtime_task_spans += 1;
                        }
                        // Module spans run on rank worker threads, which
                        // now export under per-rank pids (10 + rank).
                        if pid >= 10 && name.contains("mpi") {
                            module_spans += 1;
                        }
                    }
                    None => assert!(
                        track.lossy,
                        "event {}: E \"{}\" with no open B on pid {} tid {}",
                        i, name, pid, tid
                    ),
                }
            }
            "X" => {
                if pid == 2 {
                    net_sends += 1;
                }
            }
            "i" | "I" => {
                if pid == 2 && name == "deliver" {
                    net_delivers += 1;
                }
                if pid == 1 && (name == "pop" || name == "steal" || name == "injector") {
                    sched_instants += 1;
                }
            }
            other => panic!("event {}: unexpected ph {:?}", i, other),
        }
    }
    for ((pid, tid), track) in &tracks {
        assert!(
            track.stack.is_empty() || track.lossy,
            "pid {} tid {}: {} unclosed span(s)",
            pid,
            tid,
            track.stack.len()
        );
    }

    // The layers the issue demands all show up: per-worker task execution,
    // scheduler transitions, module spans, and per-rank network traffic.
    assert!(
        runtime_task_spans > 50,
        "task spans: {}",
        runtime_task_spans
    );
    assert!(sched_instants > 0, "no pop/steal/injector instants");
    assert!(module_spans > 0, "no mpi module spans");
    assert!(net_sends >= 20, "net sends: {}", net_sends);
    assert!(net_delivers >= 20, "net delivers: {}", net_delivers);
    let runtime_tracks = tracks.keys().filter(|(pid, _)| *pid == 1).count();
    let net_tracks = tracks.keys().filter(|(pid, _)| *pid == 2).count();
    let ranked_pids: std::collections::BTreeSet<u64> = tracks
        .keys()
        .filter(|(pid, _)| *pid >= 10)
        .map(|(pid, _)| *pid)
        .collect();
    assert!(runtime_tracks >= 2, "worker tracks: {}", runtime_tracks);
    assert_eq!(net_tracks, 2, "one netsim track per rank");
    assert_eq!(
        ranked_pids.len(),
        2,
        "one runtime process per rank: {:?}",
        ranked_pids
    );
}
