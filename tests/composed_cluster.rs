//! Cross-crate integration: the point of HiPER is *composition*, so this
//! test runs a single SPMD application that composes four modules — CUDA,
//! MPI, OpenSHMEM and checkpoint — on one unified runtime per rank, with
//! dependencies flowing across module boundaries through futures.
//!
//! Pipeline per rank (the §II-D pattern generalized):
//!   GPU kernel -> D2H future -> MPI ring exchange (futures) ->
//!   SHMEM flag put -> shmem_async_when task -> checkpoint future -> verify.

use std::sync::Arc;

use hiper::gpu::GpuModule;
use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;
use hiper::shmem::{Cmp, ShmemModule, ShmemWorld};

#[test]
fn four_modules_compose_on_one_runtime() {
    let ranks = 3;
    let world = ShmemWorld::new(ranks, 1 << 16);
    let ckpt_dir = std::env::temp_dir().join("hiper_integration_ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let results = SpmdBuilder::new(ranks)
        .net(NetConfig::default())
        .platform(|_| {
            // GPUs + interconnect + nvm/disk: the figure-2 model has all
            // places every module asserts on.
            hiper::platform::autogen::figure2(1)
        })
        .run(
            move |rank, transport| {
                let mpi = MpiModule::new(transport.clone());
                let gpu = GpuModule::new();
                let shmem = ShmemModule::new(world.clone(), transport);
                let ckpt = hiper::checkpoint::CheckpointModule::new(
                    ckpt_dir.join(format!("rank{}", rank)),
                );
                (
                    vec![
                        Arc::clone(&mpi) as Arc<dyn SchedulerModule>,
                        Arc::clone(&gpu) as Arc<dyn SchedulerModule>,
                        Arc::clone(&shmem) as Arc<dyn SchedulerModule>,
                        Arc::clone(&ckpt) as Arc<dyn SchedulerModule>,
                    ],
                    (mpi, gpu, shmem, ckpt),
                )
            },
            |env, (mpi, gpu, shmem, ckpt)| {
                let me = env.rank as u64;
                let n = env.nranks;

                // Stage 1: GPU kernel computes this rank's contribution.
                let stream = gpu.create_stream(0);
                let dbuf = gpu.alloc(0, 8);
                let d2 = Arc::clone(&dbuf);
                let kernel_done = gpu.launch_future(&stream, move || {
                    d2.with_mut(|bytes| {
                        bytes.copy_from_slice(&(me * me + 1).to_le_bytes());
                    });
                });

                // Stage 2: D2H predicated on the kernel, then MPI ring
                // exchange predicated on the D2H — all futures.
                let fetched = {
                    let gpu = Arc::clone(&gpu);
                    let stream = stream.clone();
                    let dbuf = Arc::clone(&dbuf);
                    let p = Promise::new();
                    let f = p.future();
                    let mut slot = Some(p);
                    kernel_done.on_ready(move || {
                        let inner = gpu.memcpy_d2h_future(&stream, &dbuf, 0, 8);
                        let inner2 = inner.clone();
                        let mut s = slot.take();
                        inner.on_ready(move || {
                            let v = u64::from_le_bytes(
                                inner2.try_get().unwrap()[..8].try_into().unwrap(),
                            );
                            s.take().unwrap().put(v);
                        });
                    });
                    f
                };

                // Ring: send my value right, receive from left.
                let right = (env.rank + 1) % n;
                let left = (env.rank + n - 1) % n;
                let f2 = fetched.clone();
                let unit = {
                    let p = Promise::new();
                    let f = p.future();
                    let mut slot = Some(p);
                    fetched.on_ready(move || slot.take().unwrap().put(()));
                    f
                };
                mpi.isend_await(right, 1, move || vec![f2.get()], &unit);
                let recv = mpi.irecv::<u64>(Some(left), Some(1));

                // Stage 3: on receipt, set the SHMEM flag on rank 0 (one
                // atomic per rank) and let rank 0's async_when fire once
                // every rank has checked in.
                let flag = shmem.malloc64(1);
                let sum_cell = shmem.malloc64(1);
                shmem.barrier_all();
                let raw = Arc::clone(shmem.raw());
                let recv2 = recv.clone();
                let got = hiper::runtime::api::async_future_await(&recv, move || {
                    let (data, src, _) = recv2.get();
                    assert_eq!(src, left);
                    // Accumulate the received value at rank 0 and bump the
                    // check-in counter.
                    raw.fadd(0, sum_cell.offset, data[0]);
                    raw.fadd(0, flag.offset, 1);
                    data[0]
                });

                let mut final_sum = 0u64;
                if env.rank == 0 {
                    // Predicated on all ranks' check-ins.
                    let heap = Arc::clone(shmem.heap());
                    let off = sum_cell.offset;
                    let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
                    let t2 = Arc::clone(&total);
                    finish(|| {
                        shmem.async_when(flag.offset, Cmp::Eq, n as i64, move || {
                            t2.store(heap.load_u64(off), std::sync::atomic::Ordering::SeqCst);
                        });
                    })
                    .expect("no task panicked");
                    final_sum = total.load(std::sync::atomic::Ordering::SeqCst);
                }
                let received = got.get();
                shmem.barrier_all();

                // Stage 4: checkpoint the received value, restore, verify.
                ckpt.checkpoint("ring", 1, received.to_le_bytes().to_vec())
                    .wait();
                let restored = ckpt.restore("ring", 1).get().unwrap();
                assert_eq!(
                    u64::from_le_bytes(restored[..8].try_into().unwrap()),
                    received
                );

                (received, final_sum)
            },
        );

    // Ring correctness: rank r received left neighbor's value l*l + 1.
    for (r, (received, _)) in results.iter().enumerate() {
        let left = (r + ranks - 1) % ranks;
        assert_eq!(*received, (left * left + 1) as u64);
    }
    // Rank 0's async_when observed the global sum of all contributions.
    let expected_sum: u64 = (0..ranks as u64).map(|r| r * r + 1).sum();
    assert_eq!(results[0].1, expected_sum);
}

#[test]
fn modules_see_consistent_stats_across_composition() {
    let results = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                for i in 0..10 {
                    if env.rank == 0 {
                        mpi.send(1, i, &[i]);
                    } else {
                        let _ = mpi.recv::<u64>(Some(0), Some(i));
                    }
                }
                mpi.barrier();
                let sched = env.runtime.sched_stats();
                let modules = env.runtime.module_stats().snapshot();
                let mpi_calls = modules
                    .iter()
                    .find(|(n, _, _)| n == "mpi")
                    .map(|(_, c, _)| *c)
                    .unwrap_or(0);
                (sched.tasks_executed, mpi_calls)
            },
        );
    for (tasks, mpi_calls) in results {
        assert!(tasks >= 11, "taskified calls must run as tasks: {}", tasks);
        assert!(
            mpi_calls >= 11,
            "mpi stats must record calls: {}",
            mpi_calls
        );
    }
}
