//! Cross-crate property tests: randomized SPMD communication patterns
//! checked against sequential oracles.

use std::sync::Arc;

use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;
use hiper::shmem::{RawShmem, ShmemWorld};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // SPMD cases are heavyweight; few but deep
        .. ProptestConfig::default()
    })]

    /// Arbitrary all-to-all payload matrices are delivered exactly.
    #[test]
    fn alltoallv_arbitrary_matrix(
        n in 2usize..5,
        seed in any::<u64>(),
    ) {
        let sizes: Vec<Vec<usize>> = (0..n)
            .map(|s| (0..n).map(|t| ((seed >> ((s * n + t) % 48)) % 64) as usize).collect())
            .collect();
        let sizes2 = sizes.clone();
        let results = SpmdBuilder::new(n)
            .net(NetConfig::default())
            .workers_per_rank(1)
            .run(
                |_r, t| {
                    let mpi = MpiModule::new(t);
                    (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
                },
                move |env, mpi| {
                    let parts: Vec<Vec<u64>> = (0..env.nranks)
                        .map(|t| {
                            (0..sizes2[env.rank][t])
                                .map(|i| (env.rank * 1000 + t * 100 + i) as u64)
                                .collect()
                        })
                        .collect();
                    mpi.raw().alltoallv_vec::<u64>(parts)
                },
            );
        for (t, got) in results.iter().enumerate() {
            for (s, part) in got.iter().enumerate() {
                prop_assert_eq!(part.len(), sizes[s][t]);
                for (i, v) in part.iter().enumerate() {
                    prop_assert_eq!(*v, (s * 1000 + t * 100 + i) as u64);
                }
            }
        }
    }

    /// Random one-sided put schedules agree with a sequential memory model
    /// after a barrier (last-writer-per-cell is deterministic here because
    /// each cell has exactly one writer).
    #[test]
    fn shmem_put_schedule_matches_model(
        n in 2usize..5,
        cells in 8usize..64,
        seed in any::<u64>(),
    ) {
        let world = ShmemWorld::new(n, 1 << 16);
        let results = SpmdBuilder::new(n)
            .net(NetConfig::default())
            .workers_per_rank(1)
            .run(
                move |_r, t| (Vec::new(), RawShmem::new(world.clone(), t)),
                move |env, raw| {
                    let buf = raw.malloc64(cells);
                    raw.barrier_all();
                    // Rank r writes every cell c with c % n == r, on every
                    // rank (single writer per cell).
                    for target in 0..env.nranks {
                        for c in 0..cells {
                            if c % env.nranks == env.rank {
                                let value = seed
                                    .wrapping_mul(c as u64 + 1)
                                    .wrapping_add(target as u64);
                                raw.put64(target, buf.at64(c), &[value]);
                            }
                        }
                    }
                    raw.barrier_all();
                    (0..cells)
                        .map(|c| raw.heap().load_u64(buf.at64(c)))
                        .collect::<Vec<_>>()
                },
            );
        for (target, got) in results.iter().enumerate() {
            for (c, v) in got.iter().enumerate() {
                let expect = seed.wrapping_mul(c as u64 + 1).wrapping_add(target as u64);
                prop_assert_eq!(*v, expect);
            }
        }
    }

    /// finish + arbitrary spawn trees always complete with an exact count.
    #[test]
    fn finish_counts_arbitrary_spawn_trees(
        widths in proptest::collection::vec(1usize..6, 1..4),
    ) {
        let rt = Runtime::new(hiper::platform::autogen::smp(2));
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let expected: u64 = {
            // Σ over levels of Π widths (a complete tree of given widths).
            let mut total = 0u64;
            let mut layer = 1u64;
            for w in &widths {
                layer *= *w as u64;
                total += layer;
            }
            total
        };
        let c = Arc::clone(&count);
        let w2 = widths.clone();
        rt.block_on(move || {
            fn spawn_level(
                widths: &[usize],
                count: &Arc<std::sync::atomic::AtomicU64>,
            ) {
                if widths.is_empty() {
                    return;
                }
                for _ in 0..widths[0] {
                    let rest = widths[1..].to_vec();
                    let count = Arc::clone(count);
                    async_(move || {
                        count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        spawn_level(&rest, &count);
                    });
                }
            }
            finish(|| spawn_level(&w2, &c)).expect("no task panicked");
        });
        prop_assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), expected);
        rt.shutdown();
    }
}
