//! Stress and failure-injection tests: heavy task storms, rank-skew
//! delays, repeated runtime lifecycles, task panics inside SPMD mains, and
//! backpressure through tiny mailboxes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hiper::mpi::MpiModule;
use hiper::netsim::{NetConfig, SpmdBuilder};
use hiper::prelude::*;
use hiper::shmem::{RawShmem, ShmemWorld};

#[test]
fn task_storm_with_nested_finish() {
    let rt = Runtime::new(hiper::platform::autogen::smp(3));
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    rt.block_on(move || {
        finish(|| {
            for _ in 0..50 {
                let c = Arc::clone(&c);
                async_(move || {
                    finish(|| {
                        for _ in 0..40 {
                            let c = Arc::clone(&c);
                            async_(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    })
                    .expect("no task panicked");
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no task panicked");
    });
    assert_eq!(count.load(Ordering::SeqCst), 50 * 41);
    rt.shutdown();
}

#[test]
fn repeated_runtime_lifecycle() {
    for i in 0..10 {
        let rt = Runtime::new(hiper::platform::autogen::smp(1 + i % 3));
        let v = rt.block_on(move || i * 2);
        assert_eq!(v, i * 2);
        rt.shutdown();
    }
}

#[test]
fn skewed_ranks_still_synchronize() {
    // Inject rank-dependent delays before every collective: slow ranks must
    // not break barrier/reduction semantics.
    let results = SpmdBuilder::new(4)
        .net(NetConfig::default())
        .workers_per_rank(1)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                let mut total = 0u64;
                for round in 0..5 {
                    std::thread::sleep(std::time::Duration::from_millis(
                        (env.rank as u64 * 7 + round) % 13,
                    ));
                    let s = mpi.allreduce(&[env.rank as u64 + round], hiper::mpi::ReduceOp::Sum);
                    total += s[0];
                    mpi.barrier();
                }
                total
            },
        );
    // Σ_{round} Σ_{rank} (rank + round) = Σ_round (6 + 4*round) = 30 + 40.
    assert!(results.iter().all(|&t| t == 70), "{:?}", results);
}

#[test]
fn panicking_tasks_do_not_poison_the_cluster() {
    let results = SpmdBuilder::new(2)
        .net(NetConfig::default())
        .workers_per_rank(2)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            |env, mpi| {
                // A task panics on each rank; workers survive and the
                // enclosing finish surfaces the failure as an error.
                let failed = finish(|| {
                    async_(|| panic!("injected fault"));
                });
                assert!(failed.is_err(), "finish must surface the task panic");
                assert!(
                    failed.unwrap_err().to_string().contains("injected fault"),
                    "error must carry the panic message"
                );
                // Cluster still functions afterwards.
                if env.rank == 0 {
                    mpi.send(1, 9, &[123u64]);
                    0
                } else {
                    mpi.recv::<u64>(Some(0), Some(9)).0[0]
                }
            },
        );
    assert_eq!(results[1], 123);
}

#[test]
fn message_burst_ordering_under_load() {
    // 2000 messages from 3 senders to one receiver; per-source FIFO must
    // hold under heavy delivery load.
    let n = 4;
    let per = 500u64;
    let results = SpmdBuilder::new(n)
        .net(NetConfig {
            latency: std::time::Duration::from_micros(5),
            bandwidth: 1e9,
            self_latency: std::time::Duration::from_micros(1),
            ..NetConfig::default()
        })
        .workers_per_rank(1)
        .run(
            |_r, t| {
                let mpi = MpiModule::new(t);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            move |env, mpi| {
                let raw = mpi.raw();
                if env.rank == 0 {
                    let mut per_src_next = vec![0u64; n];
                    for _ in 0..per as usize * (n - 1) {
                        let st = raw.recv(None, Some(5));
                        let v = u64::from_le_bytes(st.data[..8].try_into().unwrap());
                        assert_eq!(v, per_src_next[st.src], "FIFO violated from {}", st.src);
                        per_src_next[st.src] += 1;
                    }
                    per_src_next.iter().skip(1).all(|&c| c == per)
                } else {
                    for i in 0..per {
                        raw.send_slice(0, 5, &[i]);
                    }
                    true
                }
            },
        );
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn shmem_contended_atomics_across_many_ranks() {
    let n = 6;
    let world = ShmemWorld::new(n, 1 << 16);
    let results = SpmdBuilder::new(n)
        .net(NetConfig::default())
        .workers_per_rank(1)
        .run(
            move |_r, t| (Vec::new(), RawShmem::new(world.clone(), t)),
            |_env, raw| {
                let cell = raw.malloc64(1);
                raw.barrier_all();
                for _ in 0..200 {
                    raw.fadd(0, cell.offset, 1);
                }
                raw.barrier_all();
                raw.heap().load_u64(cell.offset)
            },
        );
    assert_eq!(results[0], (200 * n) as u64);
}

#[test]
fn forasync_heavy_irregular_load() {
    let rt = Runtime::new(hiper::platform::autogen::smp(3));
    let acc = Arc::new(AtomicU64::new(0));
    let a = Arc::clone(&acc);
    rt.block_on(move || {
        // Strongly skewed per-iteration cost exercises the recursive
        // splitter's stealability.
        forasync_1d(4000, 8, move |i| {
            let work = if i % 97 == 0 { 20_000 } else { 50 };
            let mut x = i as u64;
            for _ in 0..work {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            a.fetch_add(x & 1, Ordering::Relaxed);
        });
    });
    assert!(acc.load(Ordering::SeqCst) <= 4000);
    rt.shutdown();
}
